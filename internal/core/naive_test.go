package core

import (
	"testing"

	"sharedopt/internal/econ"
)

// Paper Example 2 verbatim on the naive strawman: with truthful bids the
// optimization is implemented at t=1 and both users pay 50; when user 2
// hides her slot-1 value, user 1 pays the whole cost and user 2 rides
// free at t=2 with utility 26 instead of 2 — the gaming AddOn prevents.
func TestNaiveOnlineExample2FreeRide(t *testing.T) {
	cost := dollars(100)

	truthful := NewNaiveOnline(Optimization{ID: 1, Cost: cost})
	mustSubmit(t, truthful.Submit(OnlineBid{User: 1, Start: 1, End: 1, Values: []econ.Money{dollars(101)}}))
	mustSubmit(t, truthful.Submit(OnlineBid{User: 2, Start: 1, End: 2,
		Values: []econ.Money{dollars(26), dollars(26)}}))
	r1 := truthful.AdvanceSlot()
	if at, ok := truthful.Implemented(); !ok || at != 1 {
		t.Fatalf("implemented %v at %d", ok, at)
	}
	if r1.Departures[1] != dollars(50) || r1.Departures[2] != dollars(50) {
		t.Fatalf("payments %v, want $50 each", r1.Departures)
	}
	truthful.AdvanceSlot()
	// User 2's truthful utility: 26+26-50 = 2.

	cheat := NewNaiveOnline(Optimization{ID: 1, Cost: cost})
	mustSubmit(t, cheat.Submit(OnlineBid{User: 1, Start: 1, End: 1, Values: []econ.Money{dollars(101)}}))
	mustSubmit(t, cheat.Submit(OnlineBid{User: 2, Start: 2, End: 2, Values: []econ.Money{dollars(26)}}))
	c1 := cheat.AdvanceSlot()
	if c1.Departures[1] != dollars(100) {
		t.Fatalf("user 1 should pay the full $100, got %v", c1.Departures[1])
	}
	c2 := cheat.AdvanceSlot()
	if !grantsEqual(c2.Active, Grant{2, 1}) {
		t.Fatalf("user 2 should ride free at t=2: %v", c2.Active)
	}
	if p, _ := cheat.Payment(2); p != 0 {
		t.Fatalf("free rider paid %v", p)
	}
	// Cheating utility 26 > truthful 2: the strawman is not truthful.
}

func TestNaiveOnlineStillRecoversCost(t *testing.T) {
	game := NewNaiveOnline(Optimization{ID: 1, Cost: dollars(30)})
	mustSubmit(t, game.Submit(OnlineBid{User: 1, Start: 1, End: 2,
		Values: []econ.Money{dollars(40), dollars(1)}}))
	game.AdvanceSlot()
	game.AdvanceSlot()
	if game.TotalRevenue() < game.CostIncurred() {
		t.Errorf("revenue %v below cost %v", game.TotalRevenue(), game.CostIncurred())
	}
}

func TestNaiveOnlineLateArrivalsRideFree(t *testing.T) {
	// Once implemented, later users pay nothing — the cost burden falls
	// entirely on whoever was present at the trigger slot.
	game := NewNaiveOnline(Optimization{ID: 1, Cost: dollars(30)})
	mustSubmit(t, game.Submit(OnlineBid{User: 1, Start: 1, End: 1, Values: []econ.Money{dollars(40)}}))
	mustSubmit(t, game.Submit(OnlineBid{User: 2, Start: 2, End: 2, Values: []econ.Money{dollars(40)}}))
	r1 := game.AdvanceSlot()
	if r1.Departures[1] != dollars(30) {
		t.Fatalf("user 1 pays %v, want $30", r1.Departures[1])
	}
	r2 := game.AdvanceSlot()
	if !grantsEqual(r2.Active, Grant{2, 1}) {
		t.Fatalf("user 2 should be serviced at t=2: %v", r2.Active)
	}
	if p, _ := game.Payment(2); p != 0 {
		t.Errorf("late user paid %v, want $0", p)
	}
}

func TestNaiveOnlineValidation(t *testing.T) {
	game := NewNaiveOnline(Optimization{ID: 1, Cost: dollars(10)})
	mustSubmit(t, game.Submit(OnlineBid{User: 1, Start: 1, End: 1, Values: []econ.Money{dollars(5)}}))
	if err := game.Submit(OnlineBid{User: 1, Start: 1, End: 1,
		Values: []econ.Money{dollars(7)}}); err == nil {
		t.Error("revision accepted by naive mechanism")
	}
	game.AdvanceSlot()
	if err := game.Submit(OnlineBid{User: 2, Start: 1, End: 1,
		Values: []econ.Money{dollars(5)}}); err == nil {
		t.Error("retroactive bid accepted")
	}
	if game.Now() != 1 {
		t.Errorf("Now = %d", game.Now())
	}
}

func TestNewNaiveOnlinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewNaiveOnline(Optimization{ID: 1, Cost: 0})
}

func TestEfficientAdditive(t *testing.T) {
	opts := []Optimization{
		{ID: 1, Cost: dollars(100)}, // total value 120: build, +20
		{ID: 2, Cost: dollars(50)},  // total value 30: skip
	}
	bids := []AdditiveBid{
		{User: 1, Opt: 1, Value: dollars(70)},
		{User: 2, Opt: 1, Value: dollars(50)},
		{User: 1, Opt: 2, Value: dollars(30)},
	}
	got, err := EfficientAdditive(opts, bids)
	if err != nil {
		t.Fatal(err)
	}
	if got != dollars(20) {
		t.Errorf("efficient utility = %v, want $20", got)
	}
	if _, err := EfficientAdditive(opts, []AdditiveBid{{User: 1, Opt: 9, Value: 1}}); err == nil {
		t.Error("unknown optimization accepted")
	}
}

// The efficient bound implements when the group can afford it even though
// no truthful cost-recovering mechanism may manage to (the paper's
// motivating "several users could benefit from an expensive optimization
// that none can afford individually" — here they CAN afford it jointly
// but Shapley's equal split fails).
func TestEfficientBeatsShapleyWhenSplitIsUnequal(t *testing.T) {
	cost := dollars(100)
	bids := map[UserID]econ.Money{1: dollars(90), 2: dollars(20)}
	res, err := Shapley(cost, bids)
	if err != nil {
		t.Fatal(err)
	}
	if res.Implemented() {
		t.Fatal("equal-split Shapley should fail this game")
	}
	eff, err := EfficientAdditive(
		[]Optimization{{ID: 1, Cost: cost}},
		[]AdditiveBid{{User: 1, Opt: 1, Value: dollars(90)}, {User: 2, Opt: 1, Value: dollars(20)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if eff != dollars(10) {
		t.Errorf("efficient utility = %v, want $10", eff)
	}
}

func TestEfficientAdditiveOnline(t *testing.T) {
	opts := []Optimization{{ID: 1, Cost: dollars(15)}}
	bids := map[OptID][]OnlineBid{
		1: {{User: 1, Start: 1, End: 2, Values: []econ.Money{dollars(10), dollars(10)}}},
	}
	got, err := EfficientAdditiveOnline(opts, bids)
	if err != nil {
		t.Fatal(err)
	}
	if got != dollars(5) {
		t.Errorf("got %v, want $5", got)
	}
	bad := map[OptID][]OnlineBid{1: {{User: 1, Start: 0, End: 0, Values: nil}}}
	if _, err := EfficientAdditiveOnline(opts, bad); err == nil {
		t.Error("invalid online bid accepted")
	}
}

func TestEfficientSubstitutive(t *testing.T) {
	opts := []Optimization{
		{ID: 1, Cost: dollars(60)},
		{ID: 2, Cost: dollars(180)},
		{ID: 3, Cost: dollars(100)},
	}
	bids := example5Bids()
	got, err := EfficientSubstitutive(opts, bids)
	if err != nil {
		t.Fatal(err)
	}
	// Best: implement {1, 3}: users 1,3 on opt 1 (100+60), user 2 on
	// opt 3 (101); user 4 wants only opt 2. Utility = 261 − 160 = 101.
	// Adding opt 2 would gain user 4's 70 at a cost of 180: worse.
	if got != dollars(101) {
		t.Errorf("efficient substitutive utility = %v, want $101", got)
	}

	// The mechanism's outcome from Example 6 is 261-160=101 too? The
	// mechanism services {1,3} on opt 1 and {2} on opt 3: same grants,
	// so zero efficiency loss in this particular game.
}

func TestEfficientSubstitutiveEmptyAndLimits(t *testing.T) {
	got, err := EfficientSubstitutive(nil, nil)
	if err != nil || got != 0 {
		t.Errorf("empty game: %v, %v", got, err)
	}
	many := make([]Optimization, EfficientSubstMaxOpts+1)
	for i := range many {
		many[i] = Optimization{ID: OptID(i + 1), Cost: 1}
	}
	if _, err := EfficientSubstitutive(many, nil); err == nil {
		t.Error("oversized enumeration accepted")
	}
	if _, err := EfficientSubstitutive([]Optimization{{ID: 1, Cost: 0}}, nil); err == nil {
		t.Error("invalid optimization accepted")
	}
	if _, err := EfficientSubstitutive([]Optimization{{ID: 1, Cost: 1}},
		[]SubstBid{{User: 1, Opts: nil, Value: 1}}); err == nil {
		t.Error("invalid bid accepted")
	}
}

// Property: the efficient bound dominates the mechanism's realized total
// utility on random offline games (the cost of truthfulness+recovery is
// never negative).
func TestEfficiencyBoundDominatesShapley(t *testing.T) {
	f := func(costRaw int64, raws []int64) bool {
		if costRaw < 0 {
			costRaw = -costRaw
		}
		cost := econ.Money(costRaw%int64(20*econ.Dollar)) + 1
		bids := randomBids(raws)
		res, err := Shapley(cost, bids)
		if err != nil {
			return false
		}
		var mechUtility econ.Money
		if res.Implemented() {
			for _, u := range res.Serviced {
				mechUtility += bids[u]
			}
			mechUtility -= res.Revenue()
			// Social utility counts the cloud's surplus too: value − cost.
			mechUtility += res.Revenue() - cost
		}
		var flat []AdditiveBid
		for u, v := range bids {
			flat = append(flat, AdditiveBid{User: u, Opt: 1, Value: v})
		}
		eff, err := EfficientAdditive([]Optimization{{ID: 1, Cost: cost}}, flat)
		if err != nil {
			return false
		}
		return eff >= mechUtility
	}
	for i := 0; i < 200; i++ {
		raws := []int64{int64(i) * 7919, int64(i) * 104729, int64(i) * 1299709}
		if !f(int64(i)*15485863+1, raws) {
			t.Fatalf("efficiency bound violated at i=%d", i)
		}
	}
}
