package core

import (
	"cmp"
	"fmt"
	"slices"

	"sharedopt/internal/econ"
)

// OnlineSubstBid declares a user's substitutive demand in an online game:
// the substitute set Ji, the service interval [Start, End], and per-slot
// values obtained in each slot if she has access to at least one
// optimization in Ji.
type OnlineSubstBid struct {
	User   UserID
	Opts   []OptID
	Start  Slot
	End    Slot
	Values []econ.Money
}

// Validate reports an error if the bid is structurally malformed.
func (b OnlineSubstBid) Validate() error {
	if err := (SubstBid{User: b.User, Opts: b.Opts}).Validate(); err != nil {
		return err
	}
	return OnlineBid{User: b.User, Start: b.Start, End: b.End, Values: b.Values}.Validate()
}

// substUser is SubstOn's record of one user. start is the first bid's
// start slot and gates participation; the curve's own interval may begin
// earlier after a revision, matching the original mechanism's behavior.
type substUser struct {
	opts       []OptID
	start      Slot
	curve      valueCurve
	granted    bool
	grantedOpt OptID
	paid       bool
	payment    econ.Money
}

// SubstOn is the SubstOn Mechanism (paper, Mechanism 4): the online
// cost-sharing mechanism for substitutive optimizations. Each slot it runs
// the SubstOff phase loop over the residual values of users seen so far,
// forcing every previously granted (user, optimization) pair to stay
// serviced by that same optimization — a user may never switch
// optimizations, which is crucial for truthfulness (paper, Example 8).
// Users pay the cost-share of their granted optimization in force when
// their bid interval ends; as with AddOn, shares only fall over time, and
// departed users keep counting toward the share denominator.
//
// The per-slot phase loop runs on scratch buffers reused across
// AdvanceSlot calls and on O(1) suffix-sum residual lookups.
type SubstOn struct {
	opts []Optimization
	// optPos maps each optimization to its position in opts — the index
	// space of the phase loop's slice-indexed results and the single
	// source for by-ID lookups (the optimization itself is opts[pos]).
	optPos      map[OptID]int
	now         Slot
	users       map[UserID]*substUser
	implemented map[OptID]Slot
	granted     map[OptID][]UserID // forced sets, maintained incrementally

	bidders []substBidder // per-slot buffer, reused across AdvanceSlot
	scratch substScratch
}

// NewSubstOn returns a new online substitutive game over the given
// optimizations. It panics on invalid or duplicate optimizations.
func NewSubstOn(opts []Optimization) *SubstOn {
	if _, err := validateOpts(opts); err != nil {
		panic(err)
	}
	optPos := make(map[OptID]int, len(opts))
	for pos, o := range opts {
		optPos[o.ID] = pos
	}
	return &SubstOn{
		opts:        append([]Optimization(nil), opts...),
		optPos:      optPos,
		users:       make(map[UserID]*substUser),
		implemented: make(map[OptID]Slot),
		granted:     make(map[OptID][]UserID),
	}
}

// Now returns the last processed slot (0 if none yet).
func (s *SubstOn) Now() Slot { return s.now }

// Optimizations returns the game's catalog in ascending ID order.
func (s *SubstOn) Optimizations() []Optimization {
	out := append([]Optimization(nil), s.opts...)
	slices.SortFunc(out, func(a, b Optimization) int { return cmp.Compare(a.ID, b.ID) })
	return out
}

// Implemented reports whether the optimization has been implemented and at
// which slot.
func (s *SubstOn) Implemented(opt OptID) (Slot, bool) {
	at, ok := s.implemented[opt]
	return at, ok
}

// Submit places or revises a bid. New bids must start after the last
// processed slot. A revision may only increase per-slot values and extend
// the interval, and may not change the substitute set.
func (s *SubstOn) Submit(bid OnlineSubstBid) error {
	if err := bid.Validate(); err != nil {
		return err
	}
	for _, j := range bid.Opts {
		if _, ok := s.optPos[j]; !ok {
			return fmt.Errorf("core: user %d bid for unknown optimization %d", bid.User, j)
		}
	}
	if bid.Start <= s.now {
		return fmt.Errorf("core: user %d: retroactive bid starting at slot %d, current slot is %d",
			bid.User, bid.Start, s.now)
	}
	online := OnlineBid{User: bid.User, Start: bid.Start, End: bid.End, Values: bid.Values}
	u := s.users[bid.User]
	if u == nil {
		s.users[bid.User] = &substUser{
			opts:  append([]OptID(nil), bid.Opts...),
			start: bid.Start,
			curve: newValueCurve(online),
		}
		return nil
	}
	if u.paid {
		return fmt.Errorf("core: user %d: bid after departure", bid.User)
	}
	if !sameOptSet(u.opts, bid.Opts) {
		return fmt.Errorf("core: user %d: revision changes substitute set", bid.User)
	}
	return u.curve.revise(online, s.now)
}

func sameOptSet(a, b []OptID) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[OptID]bool, len(a))
	for _, j := range a {
		set[j] = true
	}
	for _, j := range b {
		if !set[j] {
			return false
		}
	}
	return true
}

// AdvanceSlot processes the next time slot by running the SubstOff phase
// loop over residual bids with all existing grants forced, then charging
// users whose interval ends at this slot.
func (s *SubstOn) AdvanceSlot() SlotReport {
	s.now++
	t := s.now
	report := SlotReport{Slot: t, Departures: make(map[UserID]econ.Money)}

	bidders := s.bidders[:0]
	for id, u := range s.users {
		if u.granted || t < u.start {
			continue
		}
		r := u.curve.residual(t)
		if r <= 0 {
			continue
		}
		bidders = append(bidders, substBidder{user: id, bid: r, opts: u.opts})
	}
	phases := substPhases(s.opts, bidders, s.granted, &s.scratch)
	s.bidders = bidders[:0]

	for _, g := range phases.newGrants {
		u := s.users[g.User]
		u.granted = true
		u.grantedOpt = g.Opt
		s.granted[g.Opt] = append(s.granted[g.Opt], g.User)
	}
	report.NewGrants = phases.newGrants
	for _, pos := range phases.order {
		j := s.opts[pos].ID
		if _, seen := s.implemented[j]; !seen {
			s.implemented[j] = t
			report.Implemented = append(report.Implemented, j)
		}
	}
	sortOpts(report.Implemented)

	for id, u := range s.users {
		if u.granted && t >= u.start && t <= u.curve.end {
			report.Active = append(report.Active, Grant{User: id, Opt: u.grantedOpt})
		}
	}
	sortGrants(report.Active)

	for id, u := range s.users {
		if u.paid || u.curve.end != t {
			continue
		}
		u.paid = true
		if u.granted {
			u.payment = phases.share[s.optPos[u.grantedOpt]]
		}
		report.Departures[id] = u.payment
	}
	return report
}

// Close settles every user who has not yet paid at the current cost-share
// of her granted optimization. It returns the payments charged by this
// call.
func (s *SubstOn) Close() map[UserID]econ.Money {
	settled := make(map[UserID]econ.Money)
	for id, u := range s.users {
		if u.paid {
			continue
		}
		u.paid = true
		if u.granted {
			u.payment = s.opts[s.optPos[u.grantedOpt]].Cost.DivCeil(len(s.granted[u.grantedOpt]))
		}
		settled[id] = u.payment
	}
	return settled
}

// Payment returns the user's final payment and whether she has been
// charged yet.
func (s *SubstOn) Payment(u UserID) (econ.Money, bool) {
	usr := s.users[u]
	if usr == nil || !usr.paid {
		return 0, false
	}
	return usr.payment, true
}

// GrantedOpt returns the optimization granted to the user, if any.
func (s *SubstOn) GrantedOpt(u UserID) (OptID, bool) {
	usr := s.users[u]
	if usr == nil || !usr.granted {
		return 0, false
	}
	return usr.grantedOpt, true
}

// TotalRevenue returns the sum of all payments charged so far.
func (s *SubstOn) TotalRevenue() econ.Money {
	var total econ.Money
	for _, u := range s.users {
		if u.paid {
			total += u.payment
		}
	}
	return total
}

// CostIncurred sums the costs of implemented optimizations.
func (s *SubstOn) CostIncurred() econ.Money {
	var total econ.Money
	for j := range s.implemented {
		total += s.opts[s.optPos[j]].Cost
	}
	return total
}
