// Package core implements the cost-sharing mechanisms of Upadhyaya,
// Balazinska and Suciu, "How to Price Shared Optimizations in the Cloud"
// (VLDB 2012): the Shapley Value Mechanism and the four mechanisms built
// on it — AddOff and AddOn for additive optimizations (offline and online
// games) and SubstOff and SubstOn for substitutive optimizations.
//
// All mechanisms are deterministic. Monetary amounts are econ.Money
// (integer micro-dollars) and cost-shares use ceiling division, so the
// cost-recovery guarantee Σ payments ≥ cost holds exactly, with no
// floating-point slack.
//
// Offline mechanisms (AddOff, SubstOff) are plain functions from bids to
// an Outcome. Online mechanisms (AddOn, SubstOn) are state machines: the
// caller submits bids between slots and calls AdvanceSlot to process the
// next time slot, receiving a SlotReport of new grants and departures'
// payments.
package core

import (
	"fmt"
	"sort"

	"sharedopt/internal/econ"
)

// UserID identifies a user (player) in a pricing game.
type UserID int

// OptID identifies an optimization the cloud can implement (an index, a
// materialized view, a replica, ...).
type OptID int

// Slot is a discrete time slot of the online game, numbered from 1.
type Slot int

// Optimization describes one binary optimization the cloud may implement.
type Optimization struct {
	// ID must be unique within a game.
	ID OptID
	// Cost is the fixed cost Cj of implementing and maintaining the
	// optimization for the whole period T. It must be positive.
	Cost econ.Money
}

// Validate reports an error if the optimization is malformed.
func (o Optimization) Validate() error {
	if o.Cost <= 0 {
		return fmt.Errorf("core: optimization %d: cost must be positive, got %v", o.ID, o.Cost)
	}
	return nil
}

// Grant is a pair (user, optimization) recording that the user has been
// granted access to the optimization.
type Grant struct {
	User UserID
	Opt  OptID
}

// Outcome is the alternative chosen by an offline mechanism: the set of
// implemented optimizations, the users granted access to each, and every
// user's cost-share payments.
type Outcome struct {
	// Implemented lists implemented optimizations in ascending ID order.
	Implemented []OptID
	// Serviced maps each implemented optimization to the users granted
	// access, in ascending user order.
	Serviced map[OptID][]UserID
	// Payments maps user → optimization → cost-share. Only non-zero
	// payments are recorded.
	Payments map[UserID]map[OptID]econ.Money
}

// NewOutcome returns an empty outcome.
func NewOutcome() *Outcome {
	return &Outcome{
		Serviced: make(map[OptID][]UserID),
		Payments: make(map[UserID]map[OptID]econ.Money),
	}
}

// addGrants records that the optimization was implemented with the given
// serviced users, each paying share.
func (o *Outcome) addGrants(opt OptID, users []UserID, share econ.Money) {
	o.Implemented = append(o.Implemented, opt)
	sorted := append([]UserID(nil), users...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	o.Serviced[opt] = sorted
	for _, u := range sorted {
		o.setPayment(u, opt, share)
	}
	sort.Slice(o.Implemented, func(i, j int) bool { return o.Implemented[i] < o.Implemented[j] })
}

func (o *Outcome) setPayment(u UserID, opt OptID, p econ.Money) {
	if p == 0 {
		return
	}
	m := o.Payments[u]
	if m == nil {
		m = make(map[OptID]econ.Money)
		o.Payments[u] = m
	}
	m[opt] = p
}

// IsImplemented reports whether the optimization was implemented.
func (o *Outcome) IsImplemented(opt OptID) bool {
	_, ok := o.Serviced[opt]
	return ok
}

// IsServiced reports whether the user was granted access to the
// optimization.
func (o *Outcome) IsServiced(u UserID, opt OptID) bool {
	for _, s := range o.Serviced[opt] {
		if s == u {
			return true
		}
	}
	return false
}

// Payment returns the user's cost-share for one optimization (0 if not
// serviced).
func (o *Outcome) Payment(u UserID, opt OptID) econ.Money {
	return o.Payments[u][opt]
}

// TotalPayment returns the user's total payment Pi across optimizations.
func (o *Outcome) TotalPayment(u UserID) econ.Money {
	var total econ.Money
	for _, p := range o.Payments[u] {
		total += p
	}
	return total
}

// Revenue returns the total payments collected for one optimization.
func (o *Outcome) Revenue(opt OptID) econ.Money {
	var total econ.Money
	for _, m := range o.Payments {
		total += m[opt]
	}
	return total
}

// GrantedOpt returns the optimization granted to the user and true, or 0
// and false if the user was granted nothing. It is meaningful for
// substitutive outcomes, where each user is granted at most one
// optimization.
func (o *Outcome) GrantedOpt(u UserID) (OptID, bool) {
	for opt, users := range o.Serviced {
		for _, s := range users {
			if s == u {
				return opt, true
			}
		}
	}
	return 0, false
}

// SlotReport describes what happened in one time slot of an online game.
type SlotReport struct {
	// Slot is the slot that was just processed.
	Slot Slot
	// Implemented lists optimizations first implemented in this slot,
	// in ascending ID order.
	Implemented []OptID
	// NewGrants lists grants added in this slot, sorted by (opt, user).
	NewGrants []Grant
	// Active lists the grants of users actively serviced in this slot
	// (serviced and within their requested interval), sorted by
	// (opt, user). Value accrues to exactly these pairs.
	Active []Grant
	// Departures maps each user whose bid interval ended at this slot
	// to the payment she owes on leaving (possibly 0 if never
	// serviced). Payments are final: they never change afterwards.
	Departures map[UserID]econ.Money
}

func sortGrants(gs []Grant) {
	sort.Slice(gs, func(i, j int) bool {
		if gs[i].Opt != gs[j].Opt {
			return gs[i].Opt < gs[j].Opt
		}
		return gs[i].User < gs[j].User
	})
}

func sortUsers(us []UserID) {
	sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
}

func sortOpts(os []OptID) {
	sort.Slice(os, func(i, j int) bool { return os[i] < os[j] })
}
