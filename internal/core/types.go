// Package core implements the cost-sharing mechanisms of Upadhyaya,
// Balazinska and Suciu, "How to Price Shared Optimizations in the Cloud"
// (VLDB 2012): the Shapley Value Mechanism and the four mechanisms built
// on it — AddOff and AddOn for additive optimizations (offline and online
// games) and SubstOff and SubstOn for substitutive optimizations.
//
// All mechanisms are deterministic. Monetary amounts are econ.Money
// (integer micro-dollars) and cost-shares use ceiling division, so the
// cost-recovery guarantee Σ payments ≥ cost holds exactly, with no
// floating-point slack.
//
// Offline mechanisms (AddOff, SubstOff) are plain functions from bids to
// an Outcome. Online mechanisms (AddOn, SubstOn) are state machines: the
// caller submits bids between slots and calls AdvanceSlot to process the
// next time slot, receiving a SlotReport of new grants and departures'
// payments.
//
// # Performance architecture
//
// Every mechanism bottoms out in the Shapley Value Mechanism, so its inner
// loop is engineered to be allocation-free:
//
//   - Sorted-prefix Shapley invariant: the serviced set is always the
//     largest k such that the k highest bidders (after forced users) each
//     bid at least cost.DivCeil(k+forced). One descending sort plus an
//     O(n) prefix scan (servicedPrefix) replaces the paper's
//     drop-until-stable iteration; the two are provably equivalent because
//     survival under iterated dropping is monotone in the bid.
//   - Suffix-sum residuals: online users store their declared value
//     function as a dense valueCurve with a cached suffix-sum array, so
//     the residual Σ_{τ≥t} b(τ) needed every slot is an O(1) lookup.
//   - Scratch reuse: AddOn and SubstOn keep per-game scratch buffers and
//     rebuild nothing per slot; a warm AdvanceSlot allocates only its
//     SlotReport (see the allocation-regression tests in alloc_test.go).
//
// The experiments harness layers deterministic parallel trials on top:
// per-trial RNG seeds are drawn up front from the master seed and trial
// results are reduced in trial order, so a parallel run is bit-identical
// to a sequential one.
package core

import (
	"cmp"
	"fmt"
	"slices"

	"sharedopt/internal/econ"
)

// UserID identifies a user (player) in a pricing game.
type UserID int

// OptID identifies an optimization the cloud can implement (an index, a
// materialized view, a replica, ...).
type OptID int

// Slot is a discrete time slot of the online game, numbered from 1.
type Slot int

// Optimization describes one binary optimization the cloud may implement.
type Optimization struct {
	// ID must be unique within a game.
	ID OptID
	// Cost is the fixed cost Cj of implementing and maintaining the
	// optimization for the whole period T. It must be positive.
	Cost econ.Money
}

// Validate reports an error if the optimization is malformed.
func (o Optimization) Validate() error {
	if o.Cost <= 0 {
		return fmt.Errorf("core: optimization %d: cost must be positive, got %v", o.ID, o.Cost)
	}
	return nil
}

// Grant is a pair (user, optimization) recording that the user has been
// granted access to the optimization.
type Grant struct {
	User UserID
	Opt  OptID
}

// Outcome is the alternative chosen by an offline mechanism: the set of
// implemented optimizations, the users granted access to each, and every
// user's cost-share payments.
type Outcome struct {
	// Implemented lists implemented optimizations in ascending ID order.
	Implemented []OptID
	// Serviced maps each implemented optimization to the users granted
	// access, in ascending user order.
	Serviced map[OptID][]UserID
	// Payments maps user → optimization → cost-share. Only non-zero
	// payments are recorded.
	Payments map[UserID]map[OptID]econ.Money
}

// NewOutcome returns an empty outcome.
func NewOutcome() *Outcome {
	return &Outcome{
		Serviced: make(map[OptID][]UserID),
		Payments: make(map[UserID]map[OptID]econ.Money),
	}
}

// addGrants records that the optimization was implemented with the given
// serviced users, each paying share. It takes ownership of users: callers
// pass freshly allocated slices, which are stored directly when already
// sorted. The optimization is inserted into Implemented in ID order, so no
// per-call re-sort of the whole slice is needed.
func (o *Outcome) addGrants(opt OptID, users []UserID, share econ.Money) {
	at, _ := slices.BinarySearch(o.Implemented, opt)
	o.Implemented = slices.Insert(o.Implemented, at, opt)
	sorted := users
	if !slices.IsSorted(sorted) {
		sorted = append([]UserID(nil), users...)
		sortUsers(sorted)
	}
	o.Serviced[opt] = sorted
	for _, u := range sorted {
		o.setPayment(u, opt, share)
	}
}

func (o *Outcome) setPayment(u UserID, opt OptID, p econ.Money) {
	if p == 0 {
		return
	}
	m := o.Payments[u]
	if m == nil {
		m = make(map[OptID]econ.Money)
		o.Payments[u] = m
	}
	m[opt] = p
}

// IsImplemented reports whether the optimization was implemented.
func (o *Outcome) IsImplemented(opt OptID) bool {
	_, ok := o.Serviced[opt]
	return ok
}

// IsServiced reports whether the user was granted access to the
// optimization.
func (o *Outcome) IsServiced(u UserID, opt OptID) bool {
	for _, s := range o.Serviced[opt] {
		if s == u {
			return true
		}
	}
	return false
}

// Payment returns the user's cost-share for one optimization (0 if not
// serviced).
func (o *Outcome) Payment(u UserID, opt OptID) econ.Money {
	return o.Payments[u][opt]
}

// TotalPayment returns the user's total payment Pi across optimizations.
func (o *Outcome) TotalPayment(u UserID) econ.Money {
	var total econ.Money
	for _, p := range o.Payments[u] {
		total += p
	}
	return total
}

// Revenue returns the total payments collected for one optimization.
func (o *Outcome) Revenue(opt OptID) econ.Money {
	var total econ.Money
	for _, m := range o.Payments {
		total += m[opt]
	}
	return total
}

// GrantedOpt returns the optimization granted to the user and true, or 0
// and false if the user was granted nothing. It is meaningful for
// substitutive outcomes, where each user is granted at most one
// optimization.
func (o *Outcome) GrantedOpt(u UserID) (OptID, bool) {
	for opt, users := range o.Serviced {
		for _, s := range users {
			if s == u {
				return opt, true
			}
		}
	}
	return 0, false
}

// SlotReport describes what happened in one time slot of an online game.
type SlotReport struct {
	// Slot is the slot that was just processed.
	Slot Slot
	// Implemented lists optimizations first implemented in this slot,
	// in ascending ID order.
	Implemented []OptID
	// NewGrants lists grants added in this slot, sorted by (opt, user).
	NewGrants []Grant
	// Active lists the grants of users actively serviced in this slot
	// (serviced and within their requested interval), sorted by
	// (opt, user). Value accrues to exactly these pairs.
	Active []Grant
	// Departures maps each user whose bid interval ended at this slot
	// to the payment she owes on leaving (possibly 0 if never
	// serviced). Payments are final: they never change afterwards.
	Departures map[UserID]econ.Money
}

// The sort helpers use the generic slices package rather than sort.Slice:
// the generic form does not box a comparison closure, so sorting stays
// allocation-free on the mechanisms' hot paths.

func sortGrants(gs []Grant) {
	slices.SortFunc(gs, func(a, b Grant) int {
		if c := cmp.Compare(a.Opt, b.Opt); c != 0 {
			return c
		}
		return cmp.Compare(a.User, b.User)
	})
}

func sortUsers(us []UserID) { slices.Sort(us) }

func sortOpts(os []OptID) { slices.Sort(os) }
