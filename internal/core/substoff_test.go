package core

import (
	"testing"
)

// The optimization set of paper Examples 5–7.
func example5Opts() []Optimization {
	return []Optimization{
		{ID: 1, Cost: dollars(60)},
		{ID: 2, Cost: dollars(180)},
		{ID: 3, Cost: dollars(100)},
	}
}

func example5Bids() []SubstBid {
	return []SubstBid{
		{User: 1, Opts: []OptID{1, 2}, Value: dollars(100)},
		{User: 2, Opts: []OptID{3}, Value: dollars(101)},
		{User: 3, Opts: []OptID{1, 2, 3}, Value: dollars(60)},
		{User: 4, Opts: []OptID{2}, Value: dollars(70)},
	}
}

// Paper Example 6: phase 1 implements optimization 1 for users {1,3} at a
// share of 30; phase 2 implements optimization 3 for user 2 at 100; user 4
// gets nothing.
func TestSubstOffExample6(t *testing.T) {
	out, err := SubstOff(example5Opts(), example5Bids())
	if err != nil {
		t.Fatal(err)
	}
	if !usersEqual(out.Serviced[1], 1, 3) {
		t.Errorf("opt 1 serviced = %v, want [1 3]", out.Serviced[1])
	}
	if out.Payment(1, 1) != dollars(30) || out.Payment(3, 1) != dollars(30) {
		t.Errorf("opt 1 shares: %v, %v; want $30 each", out.Payment(1, 1), out.Payment(3, 1))
	}
	if !usersEqual(out.Serviced[3], 2) || out.Payment(2, 3) != dollars(100) {
		t.Errorf("opt 3: serviced %v at %v; want user 2 at $100", out.Serviced[3], out.Payment(2, 3))
	}
	if out.IsImplemented(2) {
		t.Error("opt 2 should not be implemented")
	}
	if got := out.TotalPayment(4); got != 0 {
		t.Errorf("user 4 pays %v, want $0", got)
	}
}

// Paper Example 7, part 1: any bid in [30, ∞) by user 3 leaves the outcome
// and her payment unchanged.
func TestSubstOffExample7OverbidInvariance(t *testing.T) {
	for _, v := range []float64{30, 45, 60, 1000} {
		bids := example5Bids()
		bids[2].Value = dollars(v)
		out, err := SubstOff(example5Opts(), bids)
		if err != nil {
			t.Fatal(err)
		}
		if !usersEqual(out.Serviced[1], 1, 3) || out.Payment(3, 1) != dollars(30) {
			t.Errorf("bid %v: opt1 serviced %v, user 3 pays %v; want [1 3] at $30",
				v, out.Serviced[1], out.Payment(3, 1))
		}
	}
}

// Paper Example 7, part 2: bidding below 30 drops user 3 entirely — she is
// not serviced by any optimization (utility 0 instead of 30).
func TestSubstOffExample7UnderbidLosesService(t *testing.T) {
	bids := example5Bids()
	bids[2].Value = dollars(29)
	out, err := SubstOff(example5Opts(), bids)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.GrantedOpt(3); ok {
		t.Fatalf("underbidding user 3 should not be serviced; outcome %+v", out)
	}
	if out.TotalPayment(3) != 0 {
		t.Errorf("unserviced user pays %v", out.TotalPayment(3))
	}
}

// Paper Example 7, part 3: hiding optimization 1 from her substitute set
// strictly lowers user 3's utility. (Running Mechanism 3 literally, user 2
// and user 3 share optimization 3 at 50, so user 3's utility drops from
// 60-30=30 to 60-50=10; the paper's prose reaches utility 0 via a
// random-tie variant. Either way the lie strictly loses.)
func TestSubstOffExample7HidingWantedOptLoses(t *testing.T) {
	bids := example5Bids()
	bids[2].Opts = []OptID{2, 3}
	out, err := SubstOff(example5Opts(), bids)
	if err != nil {
		t.Fatal(err)
	}
	opt, ok := out.GrantedOpt(3)
	if !ok {
		t.Fatal("user 3 should still be serviced by some optimization")
	}
	lyingPayment := out.Payment(3, opt)
	if lyingPayment <= dollars(30) {
		t.Errorf("lying payment %v should exceed the truthful $30 share", lyingPayment)
	}
}

// The no-dummy baseline of the Section 6.2 identity example: optimization 2
// is implemented for users {2,3} at 2.5; user 1 is left out.
func TestSubstOffSection62Baseline(t *testing.T) {
	opts := []Optimization{{ID: 1, Cost: dollars(6)}, {ID: 2, Cost: dollars(5)}}
	bids := []SubstBid{
		{User: 1, Opts: []OptID{1}, Value: dollars(5)},
		{User: 2, Opts: []OptID{1, 2}, Value: dollars(2.51)},
		{User: 3, Opts: []OptID{2}, Value: dollars(7)},
	}
	out, err := SubstOff(opts, bids)
	if err != nil {
		t.Fatal(err)
	}
	if out.IsImplemented(1) {
		t.Error("opt 1 should not be implemented without dummies")
	}
	if !usersEqual(out.Serviced[2], 2, 3) {
		t.Fatalf("opt 2 serviced = %v, want [2 3]", out.Serviced[2])
	}
	if out.Payment(2, 2) != dollars(2.5) || out.Payment(3, 2) != dollars(2.5) {
		t.Errorf("payments %v/%v, want $2.50 each", out.Payment(2, 2), out.Payment(3, 2))
	}
}

// Cost-share ties are broken toward the lowest optimization ID.
func TestSubstOffDeterministicTieBreak(t *testing.T) {
	opts := []Optimization{{ID: 7, Cost: dollars(10)}, {ID: 3, Cost: dollars(10)}}
	bids := []SubstBid{{User: 1, Opts: []OptID{3, 7}, Value: dollars(50)}}
	out, err := SubstOff(opts, bids)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsImplemented(3) || out.IsImplemented(7) {
		t.Errorf("tie should pick opt 3; got %v", out.Implemented)
	}
}

// Once a user is granted an optimization, she stops contributing to all
// others, even if that leaves them unimplemented.
func TestSubstOffGrantedUsersLeaveOtherGames(t *testing.T) {
	opts := []Optimization{{ID: 1, Cost: dollars(10)}, {ID: 2, Cost: dollars(30)}}
	bids := []SubstBid{
		{User: 1, Opts: []OptID{1, 2}, Value: dollars(20)},
		{User: 2, Opts: []OptID{2}, Value: dollars(16)},
	}
	out, err := SubstOff(opts, bids)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: opt 1 share 10 (user 1) vs opt 2 share 15 (both) — opt 1
	// wins and takes user 1. Phase 2: user 2 alone cannot cover 30.
	if !usersEqual(out.Serviced[1], 1) {
		t.Fatalf("opt 1 serviced = %v", out.Serviced[1])
	}
	if out.IsImplemented(2) {
		t.Error("opt 2 should fail once user 1 is serviced elsewhere")
	}
}

func TestSubstOffMultiPhaseCascade(t *testing.T) {
	// Three disjoint pairs of users each affording their own optimization:
	// all three implemented, cheapest shares first.
	opts := []Optimization{
		{ID: 1, Cost: dollars(10)},
		{ID: 2, Cost: dollars(20)},
		{ID: 3, Cost: dollars(30)},
	}
	bids := []SubstBid{
		{User: 1, Opts: []OptID{1}, Value: dollars(6)},
		{User: 2, Opts: []OptID{1}, Value: dollars(6)},
		{User: 3, Opts: []OptID{2}, Value: dollars(11)},
		{User: 4, Opts: []OptID{2}, Value: dollars(11)},
		{User: 5, Opts: []OptID{3}, Value: dollars(16)},
		{User: 6, Opts: []OptID{3}, Value: dollars(16)},
	}
	out, err := SubstOff(opts, bids)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []OptID{1, 2, 3} {
		if !out.IsImplemented(j) {
			t.Errorf("opt %d should be implemented", j)
		}
		if rev := out.Revenue(j); rev < dollars(float64(j)*10) {
			t.Errorf("opt %d revenue %v below cost", j, rev)
		}
	}
}

func TestSubstOffValidation(t *testing.T) {
	opts := []Optimization{{ID: 1, Cost: dollars(10)}}
	cases := []struct {
		name string
		bids []SubstBid
	}{
		{"empty set", []SubstBid{{User: 1, Opts: nil, Value: dollars(1)}}},
		{"duplicate opt in set", []SubstBid{{User: 1, Opts: []OptID{1, 1}, Value: dollars(1)}}},
		{"negative value", []SubstBid{{User: 1, Opts: []OptID{1}, Value: dollars(-1)}}},
		{"unknown opt", []SubstBid{{User: 1, Opts: []OptID{9}, Value: dollars(1)}}},
		{"duplicate user", []SubstBid{
			{User: 1, Opts: []OptID{1}, Value: dollars(1)},
			{User: 1, Opts: []OptID{1}, Value: dollars(2)},
		}},
	}
	for _, c := range cases {
		if _, err := SubstOff(opts, c.bids); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSubstOffEmptyGame(t *testing.T) {
	out, err := SubstOff(example5Opts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Implemented) != 0 {
		t.Errorf("implemented %v with no bids", out.Implemented)
	}
}
