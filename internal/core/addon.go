package core

import (
	"fmt"

	"sharedopt/internal/econ"
)

// OnlineBid declares a user's per-slot values for one optimization over a
// service interval [Start, End] (inclusive). Values[k] is the value in
// slot Start+k; len(Values) must equal End-Start+1 and every value must be
// non-negative.
type OnlineBid struct {
	User   UserID
	Start  Slot
	End    Slot
	Values []econ.Money
}

// Validate reports an error if the bid is structurally malformed.
func (b OnlineBid) Validate() error {
	if b.Start < 1 {
		return fmt.Errorf("core: user %d: bid start slot %d < 1", b.User, b.Start)
	}
	if b.End < b.Start {
		return fmt.Errorf("core: user %d: bid end %d before start %d", b.User, b.End, b.Start)
	}
	if got, want := len(b.Values), int(b.End-b.Start+1); got != want {
		return fmt.Errorf("core: user %d: bid has %d values for %d slots", b.User, got, want)
	}
	for k, v := range b.Values {
		if v < 0 {
			return fmt.Errorf("core: user %d: negative value %v at slot %d", b.User, v, b.Start+Slot(k))
		}
	}
	return nil
}

// Total returns the sum of all per-slot values.
func (b OnlineBid) Total() econ.Money {
	var t econ.Money
	for _, v := range b.Values {
		t += v
	}
	return t
}

// onlineUser is the mechanism's record of one user's declared value
// function and service status. The value function is a dense valueCurve,
// so residual lookups in AdvanceSlot are O(1).
type onlineUser struct {
	valueCurve
	serviced bool       // member of the cumulative serviced set CSj
	paid     bool       // departed and charged
	payment  econ.Money // final payment, set when paid
}

// AddOn is the AddOn Mechanism (paper, Mechanism 2): the online
// cost-sharing mechanism for a single additive optimization across
// multiple time slots. Usage:
//
//	game := core.NewAddOn(core.Optimization{ID: 1, Cost: cost})
//	game.Submit(bid)                // before the bid's first slot
//	report := game.AdvanceSlot()    // process slot 1, 2, ...
//	...
//	payments := game.Close()        // settle any still-active users
//
// At every slot the mechanism runs the Shapley Value Mechanism over each
// user's residual declared value; once a user is serviced she remains in
// the cumulative serviced set CSj (her bid is treated as infinite), so the
// per-user cost-share can only fall as newcomers join. A user pays the
// share in force when her bid interval ends. The mechanism is truthful in
// the model-free sense and cost-recovering (paper, Section 5.2).
//
// AdvanceSlot runs the mechanism on the sorted-prefix form of the Shapley
// mechanism over a scratch buffer reused across slots, so a warm game
// allocates only its per-slot report.
//
// Because optimizations are additive, a game with several optimizations is
// a set of independent AddOn instances; see AdditiveGame.
type AddOn struct {
	opt   Optimization
	now   Slot // last processed slot; 0 before the first AdvanceSlot
	users map[UserID]*onlineUser

	implemented   bool
	implementedAt Slot
	servicedCount int // |CSj|, maintained incrementally

	scratch []userBid // per-slot bidder buffer, reused across AdvanceSlot
}

// NewAddOn returns a new online game for one optimization. It panics if
// the optimization is invalid, since that is a configuration error.
func NewAddOn(opt Optimization) *AddOn {
	if err := opt.Validate(); err != nil {
		panic(err)
	}
	return &AddOn{opt: opt, users: make(map[UserID]*onlineUser)}
}

// Opt returns the optimization being priced.
func (a *AddOn) Opt() Optimization { return a.opt }

// Now returns the last processed slot (0 if none yet).
func (a *AddOn) Now() Slot { return a.now }

// Implemented reports whether the optimization has been implemented, and
// at which slot.
func (a *AddOn) Implemented() (Slot, bool) { return a.implementedAt, a.implemented }

// Submit places or revises a bid. A new bid must start strictly after the
// last processed slot (bids cannot be retroactive). A revision — a second
// Submit by the same user — may only increase values and extend the end:
// for every not-yet-processed slot the revised value must be at least the
// previously declared value, and previously declared future value may not
// be withdrawn (paper, Section 5.1).
func (a *AddOn) Submit(bid OnlineBid) error {
	if err := bid.Validate(); err != nil {
		return err
	}
	if bid.Start <= a.now {
		return fmt.Errorf("core: user %d: retroactive bid starting at slot %d, current slot is %d",
			bid.User, bid.Start, a.now)
	}
	u := a.users[bid.User]
	if u == nil {
		a.users[bid.User] = &onlineUser{valueCurve: newValueCurve(bid)}
		return nil
	}
	if u.paid {
		return fmt.Errorf("core: user %d: bid after departure", bid.User)
	}
	return u.revise(bid, a.now)
}

// AdvanceSlot processes the next time slot: it recomputes the serviced set
// with the Shapley Value Mechanism over residual bids (forcing all
// previously serviced users in), grants access to newly serviced users,
// and charges users whose interval ends at this slot.
func (a *AddOn) AdvanceSlot() SlotReport {
	a.now++
	t := a.now
	report := SlotReport{Slot: t, Departures: make(map[UserID]econ.Money)}

	// Collect residual bids of not-yet-serviced users into the reusable
	// scratch buffer; previously serviced users are the forced set and
	// only contribute their count.
	bidders := a.scratch[:0]
	for id, u := range a.users {
		if u.serviced || t < u.start {
			continue
		}
		if r := u.residual(t); r > 0 {
			bidders = append(bidders, userBid{user: id, bid: r})
		}
	}
	sortBidsDesc(bidders)
	k := servicedPrefix(a.opt.Cost, bidders, a.servicedCount)

	if k+a.servicedCount > 0 && !a.implemented {
		a.implemented = true
		a.implementedAt = t
		report.Implemented = []OptID{a.opt.ID}
	}
	for _, ub := range bidders[:k] {
		a.users[ub.user].serviced = true
		a.servicedCount++
		report.NewGrants = append(report.NewGrants, Grant{User: ub.user, Opt: a.opt.ID})
	}
	for id, u := range a.users {
		if u.serviced && t >= u.start && t <= u.end {
			report.Active = append(report.Active, Grant{User: id, Opt: a.opt.ID})
		}
	}
	sortGrants(report.NewGrants)
	sortGrants(report.Active)

	// Charge users whose bid interval ends now. Serviced users pay the
	// current (lowest so far) share; never-serviced users pay nothing.
	share := a.currentShare()
	for id, u := range a.users {
		if u.paid || u.end != t {
			continue
		}
		u.paid = true
		if u.serviced {
			u.payment = share
		}
		report.Departures[id] = u.payment
	}
	a.scratch = bidders
	return report
}

// Close settles every user who has not yet paid, charging serviced users
// the current cost-share. Call it at the end of the pricing period T, after
// the final AdvanceSlot. It returns the payments charged by this call.
func (a *AddOn) Close() map[UserID]econ.Money {
	share := a.currentShare()
	settled := make(map[UserID]econ.Money)
	for id, u := range a.users {
		if u.paid {
			continue
		}
		u.paid = true
		if u.serviced {
			u.payment = share
		}
		settled[id] = u.payment
	}
	return settled
}

// currentShare returns the cost-share implied by the cumulative serviced
// set, or 0 if nobody has been serviced.
func (a *AddOn) currentShare() econ.Money {
	if a.servicedCount == 0 {
		return 0
	}
	return a.opt.Cost.DivCeil(a.servicedCount)
}

// Payment returns the user's final payment and whether she has been
// charged yet.
func (a *AddOn) Payment(u UserID) (econ.Money, bool) {
	usr := a.users[u]
	if usr == nil || !usr.paid {
		return 0, false
	}
	return usr.payment, true
}

// TotalRevenue returns the sum of all payments charged so far.
func (a *AddOn) TotalRevenue() econ.Money {
	var total econ.Money
	for _, u := range a.users {
		if u.paid {
			total += u.payment
		}
	}
	return total
}

// CostIncurred returns the optimization cost if it was implemented, else 0.
func (a *AddOn) CostIncurred() econ.Money {
	if a.implemented {
		return a.opt.Cost
	}
	return 0
}

// AdditiveGame prices a set of additive optimizations online by running
// one independent AddOn instance per optimization, which is exactly how
// the paper reduces the multi-optimization additive case (Section 5,
// "without loss of generality ... a single optimization j").
type AdditiveGame struct {
	games map[OptID]*AddOn
	order []OptID
	now   Slot
}

// NewAdditiveGame returns a game pricing every optimization in opts.
// It panics on duplicate or invalid optimizations.
func NewAdditiveGame(opts []Optimization) *AdditiveGame {
	g := &AdditiveGame{games: make(map[OptID]*AddOn, len(opts))}
	for _, o := range opts {
		if _, dup := g.games[o.ID]; dup {
			panic(fmt.Sprintf("core: duplicate optimization %d", o.ID))
		}
		g.games[o.ID] = NewAddOn(o)
		g.order = append(g.order, o.ID)
	}
	sortOpts(g.order)
	return g
}

// Now returns the last processed slot (0 if none yet).
func (g *AdditiveGame) Now() Slot { return g.now }

// Submit places or revises the user's bid for one optimization.
func (g *AdditiveGame) Submit(opt OptID, bid OnlineBid) error {
	game := g.games[opt]
	if game == nil {
		return fmt.Errorf("core: bid for unknown optimization %d", opt)
	}
	return game.Submit(bid)
}

// AdvanceSlot processes the next slot in every per-optimization game and
// merges the reports. Departure payments are summed across optimizations.
func (g *AdditiveGame) AdvanceSlot() SlotReport {
	g.now++
	merged := SlotReport{Slot: g.now, Departures: make(map[UserID]econ.Money)}
	for _, id := range g.order {
		r := g.games[id].AdvanceSlot()
		merged.Implemented = append(merged.Implemented, r.Implemented...)
		merged.NewGrants = append(merged.NewGrants, r.NewGrants...)
		merged.Active = append(merged.Active, r.Active...)
		for u, p := range r.Departures {
			merged.Departures[u] += p
		}
	}
	sortOpts(merged.Implemented)
	sortGrants(merged.NewGrants)
	sortGrants(merged.Active)
	return merged
}

// Close settles all per-optimization games and returns total payments
// charged by this call, per user.
func (g *AdditiveGame) Close() map[UserID]econ.Money {
	totals := make(map[UserID]econ.Money)
	for _, id := range g.order {
		for u, p := range g.games[id].Close() {
			totals[u] += p
		}
	}
	return totals
}

// Game returns the per-optimization AddOn instance.
func (g *AdditiveGame) Game(opt OptID) (*AddOn, bool) {
	a, ok := g.games[opt]
	return a, ok
}

// Optimizations returns the game's catalog in ascending ID order.
func (g *AdditiveGame) Optimizations() []Optimization {
	out := make([]Optimization, len(g.order))
	for i, id := range g.order {
		out[i] = g.games[id].opt
	}
	return out
}

// TotalRevenue sums revenue across optimizations.
func (g *AdditiveGame) TotalRevenue() econ.Money {
	var total econ.Money
	for _, id := range g.order {
		total += g.games[id].TotalRevenue()
	}
	return total
}

// CostIncurred sums the costs of implemented optimizations.
func (g *AdditiveGame) CostIncurred() econ.Money {
	var total econ.Money
	for _, id := range g.order {
		total += g.games[id].CostIncurred()
	}
	return total
}
