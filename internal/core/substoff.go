package core

import (
	"fmt"

	"sharedopt/internal/econ"
)

// SubstBid is a user's bid in a substitutive game: she names the set Ji of
// optimizations that are perfect substitutes for her and the single value
// vi she obtains if granted access to at least one of them (paper,
// Section 6). Access to additional optimizations in Ji adds nothing.
type SubstBid struct {
	User  UserID
	Opts  []OptID
	Value econ.Money
}

// Validate reports an error if the bid is structurally malformed.
func (b SubstBid) Validate() error {
	if len(b.Opts) == 0 {
		return fmt.Errorf("core: user %d: empty substitute set", b.User)
	}
	seen := make(map[OptID]bool, len(b.Opts))
	for _, j := range b.Opts {
		if seen[j] {
			return fmt.Errorf("core: user %d: duplicate optimization %d in substitute set", b.User, j)
		}
		seen[j] = true
	}
	if b.Value < 0 {
		return fmt.Errorf("core: user %d: negative value %v", b.User, b.Value)
	}
	return nil
}

// SubstOff runs the SubstOff Mechanism (paper, Mechanism 3): the offline
// cost-sharing mechanism for substitutive optimizations. It works in
// phases: each phase runs the Shapley Value Mechanism independently for
// every remaining optimization over the remaining users who want it,
// implements the feasible optimization with the smallest cost-share,
// grants it to its serviced users, and removes both from further phases.
//
// Cost-share ties between optimizations are broken deterministically in
// favour of the lowest optimization ID (the paper breaks them randomly;
// a fixed rule keeps runs reproducible and is equally truthful).
//
// Each user submits at most one bid. SubstOff is truthful when users do
// not know the other users' bids, and cost-recovering (paper, Section 6.1).
func SubstOff(opts []Optimization, bids []SubstBid) (*Outcome, error) {
	optByID, err := validateOpts(opts)
	if err != nil {
		return nil, err
	}
	perUser := make(map[UserID]map[OptID]econ.Money, len(bids))
	for _, b := range bids {
		if err := b.Validate(); err != nil {
			return nil, err
		}
		if _, dup := perUser[b.User]; dup {
			return nil, fmt.Errorf("core: duplicate bid by user %d", b.User)
		}
		m := make(map[OptID]econ.Money, len(b.Opts))
		for _, j := range b.Opts {
			if _, ok := optByID[j]; !ok {
				return nil, fmt.Errorf("core: user %d bid for unknown optimization %d", b.User, j)
			}
			m[j] = b.Value
		}
		perUser[b.User] = m
	}
	phases := substPhases(opts, perUser, nil)
	outcome := NewOutcome()
	for _, j := range phases.order {
		outcome.addGrants(j, phases.serviced[j], phases.share[j])
	}
	return outcome, nil
}

func validateOpts(opts []Optimization) (map[OptID]Optimization, error) {
	byID := make(map[OptID]Optimization, len(opts))
	for _, o := range opts {
		if err := o.Validate(); err != nil {
			return nil, err
		}
		if _, dup := byID[o.ID]; dup {
			return nil, fmt.Errorf("core: duplicate optimization %d", o.ID)
		}
		byID[o.ID] = o
	}
	return byID, nil
}

// phasesResult is the output of the SubstOff phase loop.
type phasesResult struct {
	// order lists implemented optimizations in implementation order.
	order []OptID
	// serviced maps each implemented optimization to all its serviced
	// users, including forced (previously granted) ones, sorted.
	serviced map[OptID][]UserID
	// share maps each implemented optimization to its final per-user
	// cost-share this run.
	share map[OptID]econ.Money
	// newGrants lists grants added this run (forced users excluded),
	// sorted by (opt, user).
	newGrants []Grant
}

// substPhases is the phase loop shared by SubstOff and SubstOn. bids maps
// each active user to her per-optimization bid (identical for every
// optimization in her substitute set). forced maps optimization → users
// that must remain serviced by it (the "b'ij ← ∞" rows of Mechanism 4);
// forced users must not appear in bids. Inputs are assumed validated.
func substPhases(opts []Optimization, bids map[UserID]map[OptID]econ.Money, forced map[OptID]map[UserID]bool) phasesResult {
	res := phasesResult{
		serviced: make(map[OptID][]UserID),
		share:    make(map[OptID]econ.Money),
	}
	available := append([]Optimization(nil), opts...)
	// Sort by ID so that the arg-min scan breaks ties toward lower IDs.
	for i := 1; i < len(available); i++ {
		for k := i; k > 0 && available[k].ID < available[k-1].ID; k-- {
			available[k], available[k-1] = available[k-1], available[k]
		}
	}
	active := make(map[UserID]map[OptID]econ.Money, len(bids))
	for u, m := range bids {
		active[u] = m
	}
	for len(available) > 0 {
		bestIdx := -1
		var bestShare econ.Money
		var bestResult ShapleyResult
		for idx, opt := range available {
			optBids := make(map[UserID]econ.Money)
			for u, m := range active {
				if v, ok := m[opt.ID]; ok {
					optBids[u] = v
				}
			}
			r := shapleyForced(opt.Cost, optBids, forced[opt.ID])
			if !r.Implemented() {
				continue
			}
			if bestIdx == -1 || r.Share < bestShare {
				bestIdx, bestShare, bestResult = idx, r.Share, r
			}
		}
		if bestIdx == -1 {
			break
		}
		chosen := available[bestIdx]
		available = append(available[:bestIdx], available[bestIdx+1:]...)
		res.order = append(res.order, chosen.ID)
		res.serviced[chosen.ID] = bestResult.Serviced
		res.share[chosen.ID] = bestResult.Share
		for _, u := range bestResult.Serviced {
			if forced[chosen.ID][u] {
				continue // already granted in an earlier slot
			}
			res.newGrants = append(res.newGrants, Grant{User: u, Opt: chosen.ID})
			delete(active, u) // her bids for all optimizations drop to 0
		}
	}
	sortGrants(res.newGrants)
	return res
}
