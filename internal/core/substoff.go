package core

import (
	"cmp"
	"fmt"
	"slices"

	"sharedopt/internal/econ"
)

// SubstBid is a user's bid in a substitutive game: she names the set Ji of
// optimizations that are perfect substitutes for her and the single value
// vi she obtains if granted access to at least one of them (paper,
// Section 6). Access to additional optimizations in Ji adds nothing.
type SubstBid struct {
	User  UserID
	Opts  []OptID
	Value econ.Money
}

// Validate reports an error if the bid is structurally malformed.
func (b SubstBid) Validate() error {
	if len(b.Opts) == 0 {
		return fmt.Errorf("core: user %d: empty substitute set", b.User)
	}
	seen := make(map[OptID]bool, len(b.Opts))
	for _, j := range b.Opts {
		if seen[j] {
			return fmt.Errorf("core: user %d: duplicate optimization %d in substitute set", b.User, j)
		}
		seen[j] = true
	}
	if b.Value < 0 {
		return fmt.Errorf("core: user %d: negative value %v", b.User, b.Value)
	}
	return nil
}

// SubstOff runs the SubstOff Mechanism (paper, Mechanism 3): the offline
// cost-sharing mechanism for substitutive optimizations. It works in
// phases: each phase runs the Shapley Value Mechanism independently for
// every remaining optimization over the remaining users who want it,
// implements the feasible optimization with the smallest cost-share,
// grants it to its serviced users, and removes both from further phases.
//
// Cost-share ties between optimizations are broken deterministically in
// favour of the lowest optimization ID (the paper breaks them randomly;
// a fixed rule keeps runs reproducible and is equally truthful).
//
// Each user submits at most one bid. SubstOff is truthful when users do
// not know the other users' bids, and cost-recovering (paper, Section 6.1).
func SubstOff(opts []Optimization, bids []SubstBid) (*Outcome, error) {
	optByID, err := validateOpts(opts)
	if err != nil {
		return nil, err
	}
	bidders := make([]substBidder, 0, len(bids))
	seen := make(map[UserID]bool, len(bids))
	for _, b := range bids {
		if err := b.Validate(); err != nil {
			return nil, err
		}
		if seen[b.User] {
			return nil, fmt.Errorf("core: duplicate bid by user %d", b.User)
		}
		seen[b.User] = true
		for _, j := range b.Opts {
			if _, ok := optByID[j]; !ok {
				return nil, fmt.Errorf("core: user %d bid for unknown optimization %d", b.User, j)
			}
		}
		bidders = append(bidders, substBidder{user: b.User, bid: b.Value, opts: b.Opts})
	}
	phases := substPhases(opts, bidders, nil, nil)
	outcome := NewOutcome()
	for _, pos := range phases.order {
		outcome.addGrants(opts[pos].ID, phases.serviced[pos], phases.share[pos])
	}
	return outcome, nil
}

func validateOpts(opts []Optimization) (map[OptID]Optimization, error) {
	byID := make(map[OptID]Optimization, len(opts))
	for _, o := range opts {
		if err := o.Validate(); err != nil {
			return nil, err
		}
		if _, dup := byID[o.ID]; dup {
			return nil, fmt.Errorf("core: duplicate optimization %d", o.ID)
		}
		byID[o.ID] = o
	}
	return byID, nil
}

// substBidder is one active (not yet granted) user in a phase run: her
// current bid — identical for every optimization in her substitute set —
// and the set itself. The opts slice is borrowed from the caller and never
// mutated.
type substBidder struct {
	user UserID
	bid  econ.Money
	opts []OptID
}

func (b substBidder) wants(j OptID) bool {
	for _, o := range b.opts {
		if o == j {
			return true
		}
	}
	return false
}

// availOpt is one not-yet-implemented optimization in the phase loop,
// carrying its position in the caller's opts slice so results can be
// recorded in position-indexed slices instead of maps.
type availOpt struct {
	opt Optimization
	pos int32
}

// substScratch holds the phase loop's reusable buffers so an online game
// can run substPhases every slot without rebuilding them. The serviced,
// share, and order buffers back the returned phasesResult, so a result
// is valid only until the next substPhases call with the same scratch.
type substScratch struct {
	active    []substBidder
	available []availOpt
	optBids   []userBid
	serviced  [][]UserID
	share     []econ.Money
	order     []int32
}

// phasesResult is the output of the SubstOff phase loop. The serviced
// and share slices are indexed by position in the opts slice passed to
// substPhases (not by OptID), which keeps a warm online slot free of
// per-slot map allocation.
type phasesResult struct {
	// order lists implemented optimizations, as positions into opts, in
	// implementation order.
	order []int32
	// serviced[pos] lists opts[pos]'s serviced users — including forced
	// (previously granted) ones, sorted — when pos appears in order.
	serviced [][]UserID
	// share[pos] is opts[pos]'s final per-user cost-share this run, or 0
	// when pos was not implemented.
	share []econ.Money
	// newGrants lists grants added this run (forced users excluded),
	// sorted by (opt, user). It is freshly allocated per run (callers
	// retain it in SlotReports), or nil when no grants were added.
	newGrants []Grant
}

// substPhases is the phase loop shared by SubstOff and SubstOn. bidders
// are the active users with their residual bids; forced maps optimization
// → users that must remain serviced by it (the "b'ij ← ∞" rows of
// Mechanism 4); forced users must not appear in bidders. scratch may be
// nil for one-shot callers. Inputs are assumed validated.
//
// The active set is sorted once in descending bid order; each phase then
// evaluates every remaining optimization with a zero-allocation
// sorted-prefix scan (see servicedPrefix) over the subset of active users
// that want it, and serviced users are removed with an order-preserving
// merge so no re-sort is ever needed.
func substPhases(opts []Optimization, bidders []substBidder, forced map[OptID][]UserID, scratch *substScratch) phasesResult {
	if scratch == nil {
		scratch = &substScratch{}
	}
	// Size the position-indexed result buffers, reusing backing arrays.
	if cap(scratch.share) < len(opts) {
		scratch.share = make([]econ.Money, len(opts))
	}
	if cap(scratch.serviced) < len(opts) {
		serviced := make([][]UserID, len(opts))
		copy(serviced, scratch.serviced)
		scratch.serviced = serviced
	}
	scratch.share = scratch.share[:len(opts)]
	clear(scratch.share)
	scratch.serviced = scratch.serviced[:len(opts)]
	scratch.order = scratch.order[:0]
	res := phasesResult{
		serviced: scratch.serviced,
		share:    scratch.share,
	}
	// Sort by ID so that the arg-min scan breaks ties toward lower IDs.
	available := scratch.available[:0]
	for pos, opt := range opts {
		available = append(available, availOpt{opt: opt, pos: int32(pos)})
	}
	slices.SortFunc(available, func(a, b availOpt) int { return cmp.Compare(a.opt.ID, b.opt.ID) })
	active := append(scratch.active[:0], bidders...)
	slices.SortFunc(active, func(a, b substBidder) int {
		return compareBidDesc(a.bid, b.bid, a.user, b.user)
	})
	for len(available) > 0 {
		bestIdx, bestK := -1, 0
		var bestShare econ.Money
		for idx, av := range available {
			f := len(forced[av.opt.ID])
			optBids := collectOptBids(scratch, active, av.opt.ID)
			k := servicedPrefix(av.opt.Cost, optBids, f)
			if k+f == 0 {
				continue
			}
			share := av.opt.Cost.DivCeil(k + f)
			if bestIdx == -1 || share < bestShare {
				bestIdx, bestShare, bestK = idx, share, k
			}
		}
		if bestIdx == -1 {
			break
		}
		chosen := available[bestIdx]
		available = append(available[:bestIdx], available[bestIdx+1:]...)
		optBids := collectOptBids(scratch, active, chosen.opt.ID)
		servicedUsers := append(scratch.serviced[chosen.pos][:0], forced[chosen.opt.ID]...)
		for _, ub := range optBids[:bestK] {
			servicedUsers = append(servicedUsers, ub.user)
			res.newGrants = append(res.newGrants, Grant{User: ub.user, Opt: chosen.opt.ID})
		}
		sortUsers(servicedUsers)
		scratch.order = append(scratch.order, chosen.pos)
		res.serviced[chosen.pos] = servicedUsers
		res.share[chosen.pos] = bestShare
		// Drop the newly serviced bidders from the active set — their
		// bids for every other optimization fall to 0. optBids[:bestK]
		// is an ordered subsequence of active, so a single merge pass
		// removes them while preserving the sort order.
		if bestK > 0 {
			w, r := 0, 0
			for _, b := range active {
				if r < bestK && b.user == optBids[r].user {
					r++
					continue
				}
				active[w] = b
				w++
			}
			active = active[:w]
		}
	}
	sortGrants(res.newGrants)
	res.order = scratch.order
	scratch.available = available[:0]
	scratch.active = active[:0]
	return res
}

// collectOptBids gathers the bids of active users who want optimization j
// into the reusable scratch buffer, preserving the descending sort order.
func collectOptBids(scratch *substScratch, active []substBidder, j OptID) []userBid {
	out := scratch.optBids[:0]
	for _, b := range active {
		if b.wants(j) {
			out = append(out, userBid{user: b.user, bid: b.bid})
		}
	}
	scratch.optBids = out
	return out
}
