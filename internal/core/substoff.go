package core

import (
	"cmp"
	"fmt"
	"slices"

	"sharedopt/internal/econ"
)

// SubstBid is a user's bid in a substitutive game: she names the set Ji of
// optimizations that are perfect substitutes for her and the single value
// vi she obtains if granted access to at least one of them (paper,
// Section 6). Access to additional optimizations in Ji adds nothing.
type SubstBid struct {
	User  UserID
	Opts  []OptID
	Value econ.Money
}

// Validate reports an error if the bid is structurally malformed.
func (b SubstBid) Validate() error {
	if len(b.Opts) == 0 {
		return fmt.Errorf("core: user %d: empty substitute set", b.User)
	}
	seen := make(map[OptID]bool, len(b.Opts))
	for _, j := range b.Opts {
		if seen[j] {
			return fmt.Errorf("core: user %d: duplicate optimization %d in substitute set", b.User, j)
		}
		seen[j] = true
	}
	if b.Value < 0 {
		return fmt.Errorf("core: user %d: negative value %v", b.User, b.Value)
	}
	return nil
}

// SubstOff runs the SubstOff Mechanism (paper, Mechanism 3): the offline
// cost-sharing mechanism for substitutive optimizations. It works in
// phases: each phase runs the Shapley Value Mechanism independently for
// every remaining optimization over the remaining users who want it,
// implements the feasible optimization with the smallest cost-share,
// grants it to its serviced users, and removes both from further phases.
//
// Cost-share ties between optimizations are broken deterministically in
// favour of the lowest optimization ID (the paper breaks them randomly;
// a fixed rule keeps runs reproducible and is equally truthful).
//
// Each user submits at most one bid. SubstOff is truthful when users do
// not know the other users' bids, and cost-recovering (paper, Section 6.1).
func SubstOff(opts []Optimization, bids []SubstBid) (*Outcome, error) {
	optByID, err := validateOpts(opts)
	if err != nil {
		return nil, err
	}
	bidders := make([]substBidder, 0, len(bids))
	seen := make(map[UserID]bool, len(bids))
	for _, b := range bids {
		if err := b.Validate(); err != nil {
			return nil, err
		}
		if seen[b.User] {
			return nil, fmt.Errorf("core: duplicate bid by user %d", b.User)
		}
		seen[b.User] = true
		for _, j := range b.Opts {
			if _, ok := optByID[j]; !ok {
				return nil, fmt.Errorf("core: user %d bid for unknown optimization %d", b.User, j)
			}
		}
		bidders = append(bidders, substBidder{user: b.User, bid: b.Value, opts: b.Opts})
	}
	phases := substPhases(opts, bidders, nil, nil)
	outcome := NewOutcome()
	for _, j := range phases.order {
		outcome.addGrants(j, phases.serviced[j], phases.share[j])
	}
	return outcome, nil
}

func validateOpts(opts []Optimization) (map[OptID]Optimization, error) {
	byID := make(map[OptID]Optimization, len(opts))
	for _, o := range opts {
		if err := o.Validate(); err != nil {
			return nil, err
		}
		if _, dup := byID[o.ID]; dup {
			return nil, fmt.Errorf("core: duplicate optimization %d", o.ID)
		}
		byID[o.ID] = o
	}
	return byID, nil
}

// substBidder is one active (not yet granted) user in a phase run: her
// current bid — identical for every optimization in her substitute set —
// and the set itself. The opts slice is borrowed from the caller and never
// mutated.
type substBidder struct {
	user UserID
	bid  econ.Money
	opts []OptID
}

func (b substBidder) wants(j OptID) bool {
	for _, o := range b.opts {
		if o == j {
			return true
		}
	}
	return false
}

// substScratch holds the phase loop's reusable buffers so an online game
// can run substPhases every slot without rebuilding them.
type substScratch struct {
	active    []substBidder
	available []Optimization
	optBids   []userBid
}

// phasesResult is the output of the SubstOff phase loop.
type phasesResult struct {
	// order lists implemented optimizations in implementation order.
	order []OptID
	// serviced maps each implemented optimization to all its serviced
	// users, including forced (previously granted) ones, sorted.
	serviced map[OptID][]UserID
	// share maps each implemented optimization to its final per-user
	// cost-share this run.
	share map[OptID]econ.Money
	// newGrants lists grants added this run (forced users excluded),
	// sorted by (opt, user).
	newGrants []Grant
}

// substPhases is the phase loop shared by SubstOff and SubstOn. bidders
// are the active users with their residual bids; forced maps optimization
// → users that must remain serviced by it (the "b'ij ← ∞" rows of
// Mechanism 4); forced users must not appear in bidders. scratch may be
// nil for one-shot callers. Inputs are assumed validated.
//
// The active set is sorted once in descending bid order; each phase then
// evaluates every remaining optimization with a zero-allocation
// sorted-prefix scan (see servicedPrefix) over the subset of active users
// that want it, and serviced users are removed with an order-preserving
// merge so no re-sort is ever needed.
func substPhases(opts []Optimization, bidders []substBidder, forced map[OptID][]UserID, scratch *substScratch) phasesResult {
	if scratch == nil {
		scratch = &substScratch{}
	}
	res := phasesResult{
		serviced: make(map[OptID][]UserID),
		share:    make(map[OptID]econ.Money),
	}
	// Sort by ID so that the arg-min scan breaks ties toward lower IDs.
	available := append(scratch.available[:0], opts...)
	slices.SortFunc(available, func(a, b Optimization) int { return cmp.Compare(a.ID, b.ID) })
	active := append(scratch.active[:0], bidders...)
	slices.SortFunc(active, func(a, b substBidder) int {
		return compareBidDesc(a.bid, b.bid, a.user, b.user)
	})
	for len(available) > 0 {
		bestIdx, bestK := -1, 0
		var bestShare econ.Money
		for idx, opt := range available {
			f := len(forced[opt.ID])
			optBids := collectOptBids(scratch, active, opt.ID)
			k := servicedPrefix(opt.Cost, optBids, f)
			if k+f == 0 {
				continue
			}
			share := opt.Cost.DivCeil(k + f)
			if bestIdx == -1 || share < bestShare {
				bestIdx, bestShare, bestK = idx, share, k
			}
		}
		if bestIdx == -1 {
			break
		}
		chosen := available[bestIdx]
		available = append(available[:bestIdx], available[bestIdx+1:]...)
		optBids := collectOptBids(scratch, active, chosen.ID)
		servicedUsers := make([]UserID, 0, len(forced[chosen.ID])+bestK)
		servicedUsers = append(servicedUsers, forced[chosen.ID]...)
		for _, ub := range optBids[:bestK] {
			servicedUsers = append(servicedUsers, ub.user)
			res.newGrants = append(res.newGrants, Grant{User: ub.user, Opt: chosen.ID})
		}
		sortUsers(servicedUsers)
		res.order = append(res.order, chosen.ID)
		res.serviced[chosen.ID] = servicedUsers
		res.share[chosen.ID] = bestShare
		// Drop the newly serviced bidders from the active set — their
		// bids for every other optimization fall to 0. optBids[:bestK]
		// is an ordered subsequence of active, so a single merge pass
		// removes them while preserving the sort order.
		if bestK > 0 {
			w, r := 0, 0
			for _, b := range active {
				if r < bestK && b.user == optBids[r].user {
					r++
					continue
				}
				active[w] = b
				w++
			}
			active = active[:w]
		}
	}
	sortGrants(res.newGrants)
	scratch.available = available[:0]
	scratch.active = active[:0]
	return res
}

// collectOptBids gathers the bids of active users who want optimization j
// into the reusable scratch buffer, preserving the descending sort order.
func collectOptBids(scratch *substScratch, active []substBidder, j OptID) []userBid {
	out := scratch.optBids[:0]
	for _, b := range active {
		if b.wants(j) {
			out = append(out, userBid{user: b.user, bid: b.bid})
		}
	}
	scratch.optBids = out
	return out
}
