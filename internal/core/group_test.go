package core

import (
	"testing"

	"sharedopt/internal/econ"
	"sharedopt/internal/stats"
)

// Group strategyproofness (Moulin mechanisms with cross-monotonic shares
// are GSP): no coalition's joint misreport can make every member weakly
// better off and at least one strictly better off.
func TestShapleyGroupStrategyproof(t *testing.T) {
	r := stats.NewRNG(8081)
	for trial := 0; trial < 500; trial++ {
		n := 2 + r.Intn(6)
		cost := econ.Money(r.Int63n(int64(10*econ.Dollar))) + 1
		truth := make(map[UserID]econ.Money, n)
		for u := 1; u <= n; u++ {
			truth[UserID(u)] = econ.Money(r.Int63n(int64(5 * econ.Dollar)))
		}
		// A random coalition of 1..n members with random joint lies.
		k := 1 + r.Intn(n)
		coalition := make(map[UserID]bool, k)
		for _, idx := range r.SampleK(n, k) {
			coalition[UserID(idx+1)] = true
		}
		lies := make(map[UserID]econ.Money, n)
		for u, v := range truth {
			if coalition[u] {
				lies[u] = econ.Money(r.Int63n(int64(5 * econ.Dollar)))
			} else {
				lies[u] = v
			}
		}

		utility := func(bids map[UserID]econ.Money) map[UserID]econ.Money {
			res, err := Shapley(cost, bids)
			if err != nil {
				t.Fatal(err)
			}
			out := make(map[UserID]econ.Money, n)
			for _, u := range res.Serviced {
				out[u] = truth[u] - res.Share
			}
			return out
		}
		uTruth := utility(truth)
		uLie := utility(lies)

		allWeaklyBetter := true
		someStrictlyBetter := false
		for u := range coalition {
			if uLie[u] < uTruth[u] {
				allWeaklyBetter = false
				break
			}
			if uLie[u] > uTruth[u] {
				someStrictlyBetter = true
			}
		}
		if allWeaklyBetter && someStrictlyBetter {
			t.Fatalf("trial %d: coalition %v profitably misreported\ncost %v\ntruth %v\nlies %v",
				trial, coalition, cost, truth, lies)
		}
	}
}

// With a single slot, AddOn degenerates to the offline Shapley Value
// Mechanism — the reduction the paper's Proposition 1 proof leans on.
func TestAddOnSingleSlotEqualsOfflineShapley(t *testing.T) {
	r := stats.NewRNG(8082)
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(8)
		cost := econ.Money(r.Int63n(int64(10*econ.Dollar))) + 1
		bids := make(map[UserID]econ.Money, n)
		game := NewAddOn(Optimization{ID: 1, Cost: cost})
		for u := 1; u <= n; u++ {
			v := econ.Money(r.Int63n(int64(5 * econ.Dollar)))
			bids[UserID(u)] = v
			mustSubmit(t, game.Submit(OnlineBid{User: UserID(u), Start: 1, End: 1,
				Values: []econ.Money{v}}))
		}
		offline, err := Shapley(cost, bids)
		if err != nil {
			t.Fatal(err)
		}
		rep := game.AdvanceSlot()

		if len(rep.NewGrants) != len(offline.Serviced) {
			t.Fatalf("trial %d: online serviced %d, offline %d",
				trial, len(rep.NewGrants), len(offline.Serviced))
		}
		for i, g := range rep.NewGrants {
			if g.User != offline.Serviced[i] {
				t.Fatalf("trial %d: serviced sets differ: %v vs %v",
					trial, rep.NewGrants, offline.Serviced)
			}
		}
		for _, u := range offline.Serviced {
			if rep.Departures[u] != offline.Share {
				t.Fatalf("trial %d: user %d pays %v online, %v offline",
					trial, u, rep.Departures[u], offline.Share)
			}
		}
	}
}

// Cross-check between the two online mechanisms: when every user's
// substitute set is a single optimization and the sets partition the
// users, SubstOn must price each optimization exactly as an independent
// AddOn would.
func TestSubstOnSingletonSetsMatchAddOn(t *testing.T) {
	r := stats.NewRNG(8083)
	for trial := 0; trial < 200; trial++ {
		nOpts := 1 + r.Intn(3)
		opts := make([]Optimization, nOpts)
		for j := range opts {
			opts[j] = Optimization{ID: OptID(j + 1),
				Cost: econ.Money(r.Int63n(int64(4*econ.Dollar))) + 1}
		}
		z := Slot(2 + r.Intn(4))
		subst := NewSubstOn(opts)
		addOns := make(map[OptID]*AddOn, nOpts)
		for _, o := range opts {
			addOns[o.ID] = NewAddOn(o)
		}
		nUsers := 1 + r.Intn(6)
		assigned := make(map[UserID]OptID, nUsers)
		for u := 1; u <= nUsers; u++ {
			opt := opts[r.Intn(nOpts)].ID
			start := Slot(1 + r.Intn(int(z)))
			end := start + Slot(r.Intn(int(z-start)+1))
			values := make([]econ.Money, end-start+1)
			for i := range values {
				values[i] = econ.Money(r.Int63n(int64(2 * econ.Dollar)))
			}
			assigned[UserID(u)] = opt
			mustSubmit(t, subst.Submit(OnlineSubstBid{User: UserID(u), Opts: []OptID{opt},
				Start: start, End: end, Values: values}))
			mustSubmit(t, addOns[opt].Submit(OnlineBid{User: UserID(u), Start: start,
				End: end, Values: values}))
		}
		for s := Slot(1); s <= z; s++ {
			subst.AdvanceSlot()
			for _, g := range addOns {
				g.AdvanceSlot()
			}
		}
		subst.Close()
		for _, g := range addOns {
			g.Close()
		}
		for u, opt := range assigned {
			ps, oks := subst.Payment(u)
			pa, oka := addOns[opt].Payment(u)
			if ps != pa || oks != oka {
				t.Fatalf("trial %d: user %d pays %v under SubstOn, %v under AddOn",
					trial, u, ps, pa)
			}
		}
	}
}
