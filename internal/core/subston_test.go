package core

import (
	"testing"

	"sharedopt/internal/econ"
)

func example8Opts() []Optimization {
	return []Optimization{
		{ID: 1, Cost: dollars(60)},
		{ID: 2, Cost: dollars(100)},
		{ID: 3, Cost: dollars(50)},
	}
}

// Paper Example 8, first part: user 1 implements optimization 1 at t=1;
// user 2 joins it at t=2 (shares drop to 30); at t=3 user 3 implements
// optimization 3 alone, and user 2 — already bound to optimization 1 —
// does not switch. Final payments: user 1 pays 30, user 2 pays 30,
// user 3 pays 50.
func TestSubstOnExample8(t *testing.T) {
	game := NewSubstOn(example8Opts())
	mustSubmit(t, game.Submit(OnlineSubstBid{
		User: 1, Opts: []OptID{1, 2}, Start: 1, End: 2,
		Values: []econ.Money{dollars(100), dollars(100)},
	}))
	r1 := game.AdvanceSlot()
	if !grantsEqual(r1.NewGrants, Grant{1, 1}) {
		t.Fatalf("t=1 grants = %v, want user 1 on opt 1", r1.NewGrants)
	}
	if len(r1.Implemented) != 1 || r1.Implemented[0] != 1 {
		t.Fatalf("t=1 implemented = %v, want [1]", r1.Implemented)
	}

	mustSubmit(t, game.Submit(OnlineSubstBid{
		User: 2, Opts: []OptID{1, 2, 3}, Start: 2, End: 3,
		Values: []econ.Money{dollars(100), dollars(100)},
	}))
	r2 := game.AdvanceSlot()
	if !grantsEqual(r2.NewGrants, Grant{2, 1}) {
		t.Fatalf("t=2 grants = %v, want user 2 on opt 1", r2.NewGrants)
	}
	if p := r2.Departures[1]; p != dollars(30) {
		t.Fatalf("user 1 pays %v, want $30", p)
	}

	mustSubmit(t, game.Submit(OnlineSubstBid{
		User: 3, Opts: []OptID{3}, Start: 3, End: 3,
		Values: []econ.Money{dollars(100)},
	}))
	r3 := game.AdvanceSlot()
	if !grantsEqual(r3.NewGrants, Grant{3, 3}) {
		t.Fatalf("t=3 grants = %v, want user 3 on opt 3", r3.NewGrants)
	}
	if len(r3.Implemented) != 1 || r3.Implemented[0] != 3 {
		t.Fatalf("t=3 implemented = %v, want [3]", r3.Implemented)
	}
	// User 2 must not have switched to optimization 3.
	if opt, _ := game.GrantedOpt(2); opt != 1 {
		t.Fatalf("user 2 switched to opt %d", opt)
	}
	if p := r3.Departures[2]; p != dollars(30) {
		t.Errorf("user 2 pays %v, want $30", p)
	}
	if p := r3.Departures[3]; p != dollars(50) {
		t.Errorf("user 3 pays %v, want $50", p)
	}
	// Optimization 2 is never implemented.
	if _, ok := game.Implemented(2); ok {
		t.Error("opt 2 should not be implemented")
	}
	// Cost recovery: revenue 30+30+50 = 110 >= 60+50.
	if rev, cost := game.TotalRevenue(), game.CostIncurred(); rev < cost {
		t.Errorf("revenue %v below cost %v", rev, cost)
	}
}

// Paper Example 8, second part: a fourth user arriving at t=3 bidding only
// for optimization 3 cannot lure user 2 off optimization 1; users 3 and 4
// split optimization 3 at 25 each while user 2 still pays 30.
func TestSubstOnExample8NoSwitch(t *testing.T) {
	game := NewSubstOn(example8Opts())
	mustSubmit(t, game.Submit(OnlineSubstBid{
		User: 1, Opts: []OptID{1, 2}, Start: 1, End: 2,
		Values: []econ.Money{dollars(100), dollars(100)},
	}))
	game.AdvanceSlot()
	mustSubmit(t, game.Submit(OnlineSubstBid{
		User: 2, Opts: []OptID{1, 2, 3}, Start: 2, End: 3,
		Values: []econ.Money{dollars(100), dollars(100)},
	}))
	game.AdvanceSlot()
	mustSubmit(t, game.Submit(OnlineSubstBid{
		User: 3, Opts: []OptID{3}, Start: 3, End: 3,
		Values: []econ.Money{dollars(100)},
	}))
	mustSubmit(t, game.Submit(OnlineSubstBid{
		User: 4, Opts: []OptID{3}, Start: 3, End: 3,
		Values: []econ.Money{dollars(100)},
	}))
	r3 := game.AdvanceSlot()
	if p := r3.Departures[2]; p != dollars(30) {
		t.Errorf("user 2 pays %v, want $30", p)
	}
	if r3.Departures[3] != dollars(25) || r3.Departures[4] != dollars(25) {
		t.Errorf("users 3,4 pay %v/%v, want $25 each", r3.Departures[3], r3.Departures[4])
	}
}

func TestSubstOnDepartedUsersStillCountInShares(t *testing.T) {
	// User 1 implements opt 1 alone and leaves. User 2 joins later: her
	// share is computed over both users even though user 1 is gone.
	game := NewSubstOn([]Optimization{{ID: 1, Cost: dollars(60)}})
	mustSubmit(t, game.Submit(OnlineSubstBid{
		User: 1, Opts: []OptID{1}, Start: 1, End: 1, Values: []econ.Money{dollars(60)},
	}))
	r1 := game.AdvanceSlot()
	if r1.Departures[1] != dollars(60) {
		t.Fatalf("user 1 pays %v, want $60", r1.Departures[1])
	}
	mustSubmit(t, game.Submit(OnlineSubstBid{
		User: 2, Opts: []OptID{1}, Start: 2, End: 2, Values: []econ.Money{dollars(30)},
	}))
	r2 := game.AdvanceSlot()
	if p := r2.Departures[2]; p != dollars(30) {
		t.Errorf("user 2 pays %v, want $30 (60/2)", p)
	}
}

func TestSubstOnResidualValueImplementsLater(t *testing.T) {
	// A user whose residual shrinks over time: affordable at t=1 only.
	game := NewSubstOn([]Optimization{{ID: 1, Cost: dollars(18)}})
	mustSubmit(t, game.Submit(OnlineSubstBid{
		User: 1, Opts: []OptID{1}, Start: 1, End: 2,
		Values: []econ.Money{dollars(10), dollars(10)},
	}))
	r1 := game.AdvanceSlot()
	if !grantsEqual(r1.NewGrants, Grant{1, 1}) {
		t.Fatalf("residual 20 >= 18 should grant at t=1, got %v", r1.NewGrants)
	}
	r2 := game.AdvanceSlot()
	if r2.Departures[1] != dollars(18) {
		t.Errorf("payment %v, want $18", r2.Departures[1])
	}
}

func TestSubstOnPicksCheapestSubstitute(t *testing.T) {
	game := NewSubstOn([]Optimization{
		{ID: 1, Cost: dollars(90)},
		{ID: 2, Cost: dollars(40)},
	})
	mustSubmit(t, game.Submit(OnlineSubstBid{
		User: 1, Opts: []OptID{1, 2}, Start: 1, End: 1, Values: []econ.Money{dollars(95)},
	}))
	r := game.AdvanceSlot()
	if !grantsEqual(r.NewGrants, Grant{1, 2}) {
		t.Fatalf("grants = %v, want opt 2 (cheaper share)", r.NewGrants)
	}
	if r.Departures[1] != dollars(40) {
		t.Errorf("payment %v, want $40", r.Departures[1])
	}
}

func TestSubstOnCloseSettles(t *testing.T) {
	game := NewSubstOn([]Optimization{{ID: 1, Cost: dollars(30)}})
	mustSubmit(t, game.Submit(OnlineSubstBid{
		User: 1, Opts: []OptID{1}, Start: 1, End: 9,
		Values: []econ.Money{dollars(50), 0, 0, 0, 0, 0, 0, 0, 0},
	}))
	mustSubmit(t, game.Submit(OnlineSubstBid{
		User: 2, Opts: []OptID{1}, Start: 1, End: 9,
		Values: []econ.Money{dollars(50), 0, 0, 0, 0, 0, 0, 0, 0},
	}))
	game.AdvanceSlot()
	settled := game.Close()
	if settled[1] != dollars(15) || settled[2] != dollars(15) {
		t.Fatalf("Close payments = %v, want $15 each", settled)
	}
	if again := game.Close(); len(again) != 0 {
		t.Error("second Close should settle nothing")
	}
	// An unserviced user settles at zero.
	game2 := NewSubstOn([]Optimization{{ID: 1, Cost: dollars(30)}})
	mustSubmit(t, game2.Submit(OnlineSubstBid{
		User: 5, Opts: []OptID{1}, Start: 1, End: 2, Values: []econ.Money{dollars(1), dollars(1)},
	}))
	game2.AdvanceSlot()
	if p := game2.Close()[5]; p != 0 {
		t.Errorf("unserviced user settled at %v", p)
	}
}

func TestSubstOnSubmitValidation(t *testing.T) {
	game := NewSubstOn(example8Opts())
	if err := game.Submit(OnlineSubstBid{User: 1, Opts: []OptID{9}, Start: 1, End: 1,
		Values: []econ.Money{1}}); err == nil {
		t.Error("unknown optimization accepted")
	}
	if err := game.Submit(OnlineSubstBid{User: 1, Opts: nil, Start: 1, End: 1,
		Values: []econ.Money{1}}); err == nil {
		t.Error("empty substitute set accepted")
	}
	game.AdvanceSlot()
	if err := game.Submit(OnlineSubstBid{User: 1, Opts: []OptID{1}, Start: 1, End: 1,
		Values: []econ.Money{1}}); err == nil {
		t.Error("retroactive bid accepted")
	}
}

func TestSubstOnRevisionRules(t *testing.T) {
	game := NewSubstOn(example8Opts())
	mustSubmit(t, game.Submit(OnlineSubstBid{
		User: 1, Opts: []OptID{1, 2}, Start: 1, End: 3,
		Values: []econ.Money{dollars(1), dollars(1), dollars(1)},
	}))
	game.AdvanceSlot()
	// Changing the substitute set is rejected.
	if err := game.Submit(OnlineSubstBid{User: 1, Opts: []OptID{1}, Start: 2, End: 3,
		Values: []econ.Money{dollars(2), dollars(2)}}); err == nil {
		t.Error("substitute-set change accepted")
	}
	// Upward revision is fine.
	mustSubmit(t, game.Submit(OnlineSubstBid{User: 1, Opts: []OptID{1, 2}, Start: 2, End: 3,
		Values: []econ.Money{dollars(2), dollars(2)}}))
	// Downward revision is rejected.
	if err := game.Submit(OnlineSubstBid{User: 1, Opts: []OptID{1, 2}, Start: 2, End: 3,
		Values: []econ.Money{dollars(1), dollars(2)}}); err == nil {
		t.Error("downward revision accepted")
	}
	// Departed users may not bid again.
	game.AdvanceSlot()
	game.AdvanceSlot()
	game.Close()
	if err := game.Submit(OnlineSubstBid{User: 1, Opts: []OptID{1, 2}, Start: 4, End: 4,
		Values: []econ.Money{dollars(2)}}); err == nil {
		t.Error("bid after departure accepted")
	}
}

func TestNewSubstOnPanicsOnBadOpts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSubstOn([]Optimization{{ID: 1, Cost: 0}})
}
