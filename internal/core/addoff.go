package core

import (
	"fmt"

	"sharedopt/internal/econ"
)

// AdditiveBid is user User's declared value for a single optimization in
// an offline additive game. A user submits one AdditiveBid per
// optimization she values; her total value for an alternative is the sum
// of her values over the grant pairs it contains (paper, Eq. 1).
type AdditiveBid struct {
	User  UserID
	Opt   OptID
	Value econ.Money
}

// AddOff runs the AddOff Mechanism (paper, Section 4.2): the offline
// cost-sharing mechanism for additive optimizations. Because values are
// additive, it runs the Shapley Value Mechanism independently for every
// optimization and combines the results into a single Outcome. AddOff
// inherits truthfulness and cost-recovery from the Shapley Value
// Mechanism. Each per-optimization run uses the sorted-prefix form of the
// mechanism directly: bids are grouped into per-optimization slices,
// sorted once, and scanned.
//
// Optimizations with no serviced users are not implemented and charge
// nobody. Duplicate bids by the same user for the same optimization are an
// error, as are bids for unknown optimizations and negative values.
func AddOff(opts []Optimization, bids []AdditiveBid) (*Outcome, error) {
	byOpt, err := groupAdditiveBids(opts, bids)
	if err != nil {
		return nil, err
	}
	outcome := NewOutcome()
	for _, opt := range opts {
		sorted := byOpt[opt.ID]
		sortBidsDesc(sorted)
		res := shapleyFromSorted(opt.Cost, sorted, nil)
		if res.Implemented() {
			outcome.addGrants(opt.ID, res.Serviced, res.Share)
		}
	}
	return outcome, nil
}

// groupAdditiveBids validates opts and bids and groups bids per
// optimization.
func groupAdditiveBids(opts []Optimization, bids []AdditiveBid) (map[OptID][]userBid, error) {
	known := make(map[OptID]bool, len(opts))
	for _, o := range opts {
		if err := o.Validate(); err != nil {
			return nil, err
		}
		if known[o.ID] {
			return nil, fmt.Errorf("core: duplicate optimization %d", o.ID)
		}
		known[o.ID] = true
	}
	byOpt := make(map[OptID][]userBid, len(opts))
	seen := make(map[Grant]bool, len(bids))
	for _, b := range bids {
		if !known[b.Opt] {
			return nil, fmt.Errorf("core: bid by user %d for unknown optimization %d", b.User, b.Opt)
		}
		if b.Value < 0 {
			return nil, fmt.Errorf("core: user %d bid negative value %v for optimization %d", b.User, b.Value, b.Opt)
		}
		if seen[Grant{User: b.User, Opt: b.Opt}] {
			return nil, fmt.Errorf("core: duplicate bid by user %d for optimization %d", b.User, b.Opt)
		}
		seen[Grant{User: b.User, Opt: b.Opt}] = true
		byOpt[b.Opt] = append(byOpt[b.Opt], userBid{user: b.User, bid: b.Value})
	}
	return byOpt, nil
}
