// Package sharedopt selects and prices shared optimizations (indexes,
// materialized views, replicas, ...) in a multi-tenant data service,
// implementing the cost-sharing mechanisms of Upadhyaya, Balazinska and
// Suciu, "How to Price Shared Optimizations in the Cloud" (VLDB 2012).
//
// The mechanisms decide which optimizations a provider should build, who
// may use them, and what each user pays, with two guarantees that hold
// even against selfish users:
//
//   - truthfulness: no user can improve her (worst-case) utility by
//     misreporting her value, her timing, or which optimizations she
//     wants;
//   - cost recovery: the provider never loses money on an optimization
//     it builds — payments always cover the cost, exactly (all money is
//     integer micro-dollars).
//
// Four games are supported, combining additive vs substitutive user
// values with offline (single period) vs online (users come and go)
// play. Offline games are one-shot function calls (PriceOne, RunAddOff,
// RunSubstOff); online games run through a Service that accepts bids and
// advances billing slots.
//
//	svc, _ := sharedopt.NewAdditiveService([]sharedopt.Optimization{
//		{ID: 1, Cost: sharedopt.FromDollars(100)},
//	}, 3)
//	svc.SubmitAdditiveBid(1, sharedopt.OnlineBid{
//		User: 7, Start: 1, End: 2,
//		Values: []sharedopt.Money{sharedopt.FromDollars(30), sharedopt.FromDollars(30)},
//	})
//	report, _ := svc.AdvanceSlot()
//
// The experiments subcommand surface (RunFigure) regenerates every
// figure of the paper's evaluation section.
package sharedopt

import (
	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/experiments"
	"sharedopt/internal/workload"
)

// Money is an exact amount of US dollars in integer micro-dollars.
type Money = econ.Money

// Common denominations, re-exported for bid construction.
const (
	// Cent is one hundredth of a dollar.
	Cent = econ.Cent
	// Dollar is one dollar.
	Dollar = econ.Dollar
)

// FromDollars converts a float dollar amount to Money (rounding to the
// nearest micro-dollar).
func FromDollars(d float64) Money { return econ.FromDollars(d) }

// FromCents converts whole cents to Money.
func FromCents(c int64) Money { return econ.FromCents(c) }

// ParseMoney parses strings like "2.31", "$0.03", "-$1.5".
func ParseMoney(s string) (Money, error) { return econ.ParseMoney(s) }

// Core game types, re-exported from the mechanism implementation.
type (
	// UserID identifies a user (player).
	UserID = core.UserID
	// OptID identifies an optimization.
	OptID = core.OptID
	// Slot is a discrete billing time slot, numbered from 1.
	Slot = core.Slot
	// Optimization is one binary optimization with its period cost.
	Optimization = core.Optimization
	// Grant is a (user, optimization) access pair.
	Grant = core.Grant
	// Outcome is an offline mechanism's chosen alternative.
	Outcome = core.Outcome
	// ShapleyResult is the Shapley Value Mechanism's output for a
	// single optimization.
	ShapleyResult = core.ShapleyResult
	// AdditiveBid is an offline additive bid for one optimization.
	AdditiveBid = core.AdditiveBid
	// SubstBid is an offline substitutive bid: a set of equivalent
	// optimizations and one value.
	SubstBid = core.SubstBid
	// OnlineBid is a per-slot value stream for one optimization.
	OnlineBid = core.OnlineBid
	// OnlineSubstBid is a per-slot value stream over a substitute set.
	OnlineSubstBid = core.OnlineSubstBid
	// SlotReport describes one processed slot of an online game.
	SlotReport = core.SlotReport
	// Figure is a regenerated paper figure (series over x positions).
	Figure = experiments.Figure
)

// PriceOne runs the Shapley Value Mechanism for a single optimization:
// given its cost and one bid per user, it returns who is serviced and the
// uniform cost-share each serviced user pays. It is truthful and
// cost-recovering.
func PriceOne(cost Money, bids map[UserID]Money) (ShapleyResult, error) {
	return core.Shapley(cost, bids)
}

// RunAddOff runs the offline mechanism for additive optimizations
// (paper Section 4.2): an independent Shapley game per optimization.
func RunAddOff(opts []Optimization, bids []AdditiveBid) (*Outcome, error) {
	return core.AddOff(opts, bids)
}

// RunSubstOff runs the offline mechanism for substitutive optimizations
// (paper Section 6.1): repeated Shapley phases, implementing the
// cheapest-share feasible optimization each round.
func RunSubstOff(opts []Optimization, bids []SubstBid) (*Outcome, error) {
	return core.SubstOff(opts, bids)
}

// RunFigure regenerates one of the paper's evaluation figures ("1", "2a"
// ... "5b") or ablations ("1e", "E1"–"E3"). effort is the number of
// Monte-Carlo trials (or sampled alternatives for figure 1); seed fixes
// the randomness.
func RunFigure(id string, effort int, seed uint64) (*Figure, error) {
	return experiments.Run(id, effort, seed)
}

// FigureIDs lists the regenerable figures in display order.
func FigureIDs() []string { return experiments.FigureIDs() }

// QuarterSpan is a contiguous span of quarters an astronomer subscribes
// for in the astronomy use-case scenario.
type QuarterSpan = workload.QuarterSpan

// AstronomyUsers is the number of astronomers in the use-case.
const AstronomyUsers = workload.AstroUsers

// AstronomyScenario builds the paper's Section 7.2 use-case as a playable
// additive game: 27 materialized-view optimizations at $2.31 each over 4
// quarter slots, with each astronomer's bids derived from her workload's
// measured per-execution savings. Submit the returned bids to an additive
// Service over the returned optimizations and horizon.
func AstronomyScenario(spans [AstronomyUsers]QuarterSpan, executions int) (opts []Optimization, bids []AstronomyBid, horizon Slot) {
	sc := workload.Astronomy(spans, executions)
	out := make([]AstronomyBid, len(sc.Bids))
	for i, b := range sc.Bids {
		out[i] = AstronomyBid{Opt: b.Opt, Bid: OnlineBid{
			User: b.User, Start: b.Start, End: b.End, Values: b.Values,
		}}
	}
	return sc.Opts, out, sc.Horizon
}

// AstronomyBid pairs an astronomer's online bid with the optimization
// (per-snapshot view) it targets.
type AstronomyBid struct {
	Opt OptID
	Bid OnlineBid
}
