// Dynamic collaboration: the paper's Example 3 played through the public
// Service API. Users join and leave across three billing slots; the
// per-user cost-share falls as newcomers join, and everyone pays the
// share in force when they depart.
//
// Run with: go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"sharedopt"
)

func main() {
	// One optimization costing $100, priced over three slots.
	svc, err := sharedopt.NewAdditiveService([]sharedopt.Optimization{
		{ID: 1, Cost: sharedopt.FromDollars(100)},
	}, 3)
	if err != nil {
		log.Fatal(err)
	}
	submit := func(b sharedopt.OnlineBid) {
		if err := svc.SubmitAdditiveBid(1, b); err != nil {
			log.Fatal(err)
		}
	}
	d := sharedopt.FromDollars

	// Slot 1 bidders: user 1 needs the optimization badly for one slot;
	// user 2 has a modest value spread over three slots.
	submit(sharedopt.OnlineBid{User: 1, Start: 1, End: 1, Values: []sharedopt.Money{d(101)}})
	submit(sharedopt.OnlineBid{User: 2, Start: 1, End: 3, Values: []sharedopt.Money{d(16), d(16), d(16)}})

	report, err := svc.AdvanceSlot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slot 1: implemented %v, grants %v\n", report.Implemented, report.NewGrants)
	fmt.Printf("slot 1: user 1 departs paying %v (alone in the serviced set)\n",
		report.Departures[1])

	// Two more users arrive for slot 2; with four users ever serviced,
	// the share drops to $25 — low enough for user 2's residual $32.
	submit(sharedopt.OnlineBid{User: 3, Start: 2, End: 2, Values: []sharedopt.Money{d(26)}})
	submit(sharedopt.OnlineBid{User: 4, Start: 2, End: 2, Values: []sharedopt.Money{d(26)}})
	report, err = svc.AdvanceSlot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slot 2: new grants %v, departures %v\n", report.NewGrants, report.Departures)

	report, err = svc.AdvanceSlot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slot 3: user 2 departs paying %v\n", report.Departures[2])

	fmt.Printf("revenue %v against cost %v — surplus %v (never negative)\n",
		svc.Revenue(), svc.CostIncurred(), svc.Surplus())
}
