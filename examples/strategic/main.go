// Strategic bidding: why lying does not pay. This example replays the
// paper's Example 2 cheat — a user hiding her early value to free-ride on
// someone else's payment — and shows that the AddOn mechanism makes the
// lie strictly unprofitable.
//
// Run with: go run ./examples/strategic
package main

import (
	"fmt"
	"log"

	"sharedopt"
)

const cost = 100

// play runs the two-user game with user 2 declaring the given bid and
// returns user 2's realized utility given her TRUE values ($26 in each of
// slots 1 and 2).
func play(user2 sharedopt.OnlineBid) sharedopt.Money {
	d := sharedopt.FromDollars
	svc, err := sharedopt.NewAdditiveService([]sharedopt.Optimization{
		{ID: 1, Cost: d(cost)},
	}, 2)
	if err != nil {
		log.Fatal(err)
	}
	// User 1 truthfully wants slot 1 only, at $101.
	if err := svc.SubmitAdditiveBid(1, sharedopt.OnlineBid{
		User: 1, Start: 1, End: 1, Values: []sharedopt.Money{d(101)},
	}); err != nil {
		log.Fatal(err)
	}
	if err := svc.SubmitAdditiveBid(1, user2); err != nil {
		log.Fatal(err)
	}
	trueValue := map[sharedopt.Slot]sharedopt.Money{1: d(26), 2: d(26)}
	var value sharedopt.Money
	for t := sharedopt.Slot(1); t <= 2; t++ {
		report, err := svc.AdvanceSlot()
		if err != nil {
			log.Fatal(err)
		}
		for _, g := range report.Active {
			if g.User == 2 {
				value += trueValue[t]
			}
		}
	}
	paid, _ := svc.Invoice(2)
	return value - paid
}

func main() {
	d := sharedopt.FromDollars

	truthful := play(sharedopt.OnlineBid{
		User: 2, Start: 1, End: 2, Values: []sharedopt.Money{d(26), d(26)},
	})
	fmt.Printf("truthful bid (26, 26):     user 2's utility = %v\n", truthful)

	// The Example 2 cheat: hide the slot-1 value, hope user 1 pays the
	// whole cost at slot 1, then ride for free at slot 2.
	hiding := play(sharedopt.OnlineBid{
		User: 2, Start: 2, End: 2, Values: []sharedopt.Money{d(26)},
	})
	fmt.Printf("hiding slot-1 value (.,26): user 2's utility = %v\n", hiding)

	// Overbidding does not help either: the uniform cost-share depends
	// on who is serviced, not on how high she bids, so exaggerating
	// buys nothing (and risks paying above her true value — paper,
	// Example 4).
	overbid := play(sharedopt.OnlineBid{
		User: 2, Start: 1, End: 2, Values: []sharedopt.Money{d(60), d(60)},
	})
	fmt.Printf("overbidding (60, 60):      user 2's utility = %v\n", overbid)

	fmt.Println()
	switch {
	case truthful >= hiding && truthful >= overbid:
		fmt.Println("truth-telling maximized user 2's utility — as Proposition 1 promises.")
	default:
		fmt.Println("unexpected: a lie beat the truth (please file a bug)")
	}
}
