// Quickstart: price one shared optimization among three users with the
// Shapley Value Mechanism, then a two-optimization offline game with the
// AddOff mechanism.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sharedopt"
)

func main() {
	// A $90 index; three users privately value it at $50, $45 and $20.
	// The mechanism finds the largest self-supporting group: at $30
	// each, all three could pay, but the $20 user declines; at $45 the
	// remaining two are happy. It never loses money, and no user can
	// do better by lying about her value.
	res, err := sharedopt.PriceOne(sharedopt.FromDollars(90), map[sharedopt.UserID]sharedopt.Money{
		1: sharedopt.FromDollars(50),
		2: sharedopt.FromDollars(45),
		3: sharedopt.FromDollars(20),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single optimization ($90): serviced users %v, each pays %v\n",
		res.Serviced, res.Share)

	// Two independent (additive) optimizations priced in one shot.
	opts := []sharedopt.Optimization{
		{ID: 1, Cost: sharedopt.FromDollars(90)},
		{ID: 2, Cost: sharedopt.FromDollars(300)},
	}
	bids := []sharedopt.AdditiveBid{
		{User: 1, Opt: 1, Value: sharedopt.FromDollars(50)},
		{User: 2, Opt: 1, Value: sharedopt.FromDollars(45)},
		{User: 3, Opt: 1, Value: sharedopt.FromDollars(20)},
		{User: 1, Opt: 2, Value: sharedopt.FromDollars(100)}, // 300 is out of reach
		{User: 3, Opt: 2, Value: sharedopt.FromDollars(120)},
	}
	outcome, err := sharedopt.RunAddOff(opts, bids)
	if err != nil {
		log.Fatal(err)
	}
	for _, opt := range opts {
		if outcome.IsImplemented(opt.ID) {
			fmt.Printf("optimization %d (%v): implemented for %v, revenue %v\n",
				opt.ID, opt.Cost, outcome.Serviced[opt.ID], outcome.Revenue(opt.ID))
		} else {
			fmt.Printf("optimization %d (%v): not worth building\n", opt.ID, opt.Cost)
		}
	}
	for u := sharedopt.UserID(1); u <= 3; u++ {
		fmt.Printf("user %d pays %v in total\n", u, outcome.TotalPayment(u))
	}
}
