// Astronomy: the paper's motivating use-case (Section 2) end to end. Six
// astronomers trace halo evolution across 27 universe-simulation
// snapshots; 27 per-snapshot materialized views are the optimizations.
// This example prices one year of collaboration through the public
// Service API using the paper's measured per-execution savings, then
// regenerates a small version of Figure 1.
//
// Run with: go run ./examples/astronomy
package main

import (
	"fmt"
	"log"

	"sharedopt"
)

func main() {
	// Build the year-long additive game: 27 views at $2.31 each over 4
	// quarter slots. Every astronomer executes her workload 60 times,
	// subscribing for the spans below.
	spans := [sharedopt.AstronomyUsers]sharedopt.QuarterSpan{
		{Start: 1, Len: 4}, // γ1 full-trace astronomer, all year
		{Start: 1, Len: 2},
		{Start: 3, Len: 2},
		{Start: 2, Len: 3}, // γ2 full-trace astronomer
		{Start: 2, Len: 1},
		{Start: 4, Len: 1},
	}
	const executions = 60
	opts, bids, horizon := sharedopt.AstronomyScenario(spans, executions)

	svc, err := sharedopt.NewAdditiveService(opts, horizon)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range bids {
		if err := svc.SubmitAdditiveBid(b.Opt, b.Bid); err != nil {
			log.Fatal(err)
		}
	}
	var implemented int
	for q := sharedopt.Slot(1); q <= horizon; q++ {
		report, err := svc.AdvanceSlot()
		if err != nil {
			log.Fatal(err)
		}
		implemented += len(report.Implemented)
		fmt.Printf("quarter %d: %d views newly built, %d grants added\n",
			q, len(report.Implemented), len(report.NewGrants))
	}
	fmt.Printf("\n%d of 27 views were worth building at %d executions/user\n",
		implemented, executions)
	for u := sharedopt.UserID(1); u <= sharedopt.AstronomyUsers; u++ {
		invoice, _ := svc.Invoice(u)
		fmt.Printf("astronomer %d pays %v for the year\n", u, invoice)
	}
	fmt.Printf("view costs %v fully recovered by %v of payments (surplus %v)\n\n",
		svc.CostIncurred(), svc.Revenue(), svc.Surplus())

	// Regenerate a quick Figure 1 (sampled; see cmd/experiments for the
	// full version, and -fig 1e for the engine-derived variant).
	fig, err := sharedopt.RunFigure("1", 150, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig.Table())
}
