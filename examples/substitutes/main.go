// Substitutable optimizations: the paper's Example 8 through the public
// Service API. Three optimizations could each serve a user's workload
// (say an index, a materialized view, and a replica that all fix the same
// slow query); each user wants any one of her set, and the mechanism
// implements the cheapest-per-user choices without ever letting a user
// switch — the no-switch rule is what keeps the game truthful.
//
// Run with: go run ./examples/substitutes
package main

import (
	"fmt"
	"log"

	"sharedopt"
)

func main() {
	svc, err := sharedopt.NewSubstitutiveService([]sharedopt.Optimization{
		{ID: 1, Cost: sharedopt.FromDollars(60)},  // index
		{ID: 2, Cost: sharedopt.FromDollars(100)}, // materialized view
		{ID: 3, Cost: sharedopt.FromDollars(50)},  // replica
	}, 3)
	if err != nil {
		log.Fatal(err)
	}
	submit := func(b sharedopt.OnlineSubstBid) {
		if err := svc.SubmitSubstitutiveBid(b); err != nil {
			log.Fatal(err)
		}
	}
	d := sharedopt.FromDollars

	// User 1 (slots 1-2) is happy with the index or the view.
	submit(sharedopt.OnlineSubstBid{User: 1, Opts: []sharedopt.OptID{1, 2},
		Start: 1, End: 2, Values: []sharedopt.Money{d(100), d(100)}})
	r, err := svc.AdvanceSlot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slot 1: implemented %v (the cheaper substitute), grants %v\n",
		r.Implemented, r.NewGrants)

	// User 2 (slots 2-3) would take any of the three; she joins the
	// already-built index and halves its share.
	submit(sharedopt.OnlineSubstBid{User: 2, Opts: []sharedopt.OptID{1, 2, 3},
		Start: 2, End: 3, Values: []sharedopt.Money{d(100), d(100)}})
	r, err = svc.AdvanceSlot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slot 2: grants %v, user 1 departs paying %v\n", r.NewGrants, r.Departures[1])

	// User 3 (slot 3) insists on the replica. User 2 is already bound
	// to the index and does not switch, so user 3 carries the replica
	// alone.
	submit(sharedopt.OnlineSubstBid{User: 3, Opts: []sharedopt.OptID{3},
		Start: 3, End: 3, Values: []sharedopt.Money{d(100)}})
	r, err = svc.AdvanceSlot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slot 3: implemented %v, departures: user 2 pays %v, user 3 pays %v\n",
		r.Implemented, r.Departures[2], r.Departures[3])

	fmt.Printf("revenue %v, cost %v, surplus %v\n",
		svc.Revenue(), svc.CostIncurred(), svc.Surplus())
}
