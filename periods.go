package sharedopt

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// The paper prices each optimization with a single fixed cost Cj covering
// implementation plus maintenance "for some extended period of time T
// (e.g., a month). ... at the end of this time-period, the optimization's
// cost is re-computed and all interested users must purchase it again"
// (Section 5). PeriodManager implements that outer loop: a sequence of
// Services over the same optimization catalog, with per-period cost
// recomputation.

// CostPolicy recomputes an optimization's cost at the start of each new
// period. period is 1-based; implementedBefore reports whether the
// optimization was implemented in the previous period (a maintained index
// is usually cheaper to keep than to rebuild).
type CostPolicy func(opt Optimization, period int, implementedBefore bool) Money

// FixedCost keeps every optimization's configured cost in every period.
func FixedCost(opt Optimization, _ int, _ bool) Money { return opt.Cost }

// MaintenanceDiscount returns a policy that charges the full cost the
// first time and cost×num/den for periods following one where the
// optimization was implemented (pure maintenance, no rebuild).
func MaintenanceDiscount(num, den int64) (CostPolicy, error) {
	if num < 0 || den <= 0 || num > den {
		return nil, fmt.Errorf("sharedopt: maintenance discount %d/%d out of [0,1]", num, den)
	}
	return func(opt Optimization, _ int, implementedBefore bool) Money {
		if !implementedBefore {
			return opt.Cost
		}
		discounted := opt.Cost.MulInt(num) / Money(den)
		if discounted < 1 {
			discounted = 1 // costs must stay positive
		}
		return discounted
	}, nil
}

// PeriodManager runs successive pricing periods over a fixed optimization
// catalog. Each period is an independent truthful, cost-recovering game;
// state carried across periods is only the cost recomputation input
// (which optimizations were implemented). It is safe for concurrent use.
type PeriodManager struct {
	mu          sync.Mutex
	kind        GameKind
	catalog     []Optimization
	horizon     Slot
	policy      CostPolicy
	period      int
	current     *Service
	implemented map[OptID]bool
	revenue     Money
	cost        Money
}

// NewPeriodManager returns a manager for the catalog. Each period lasts
// horizon slots; policy recomputes costs between periods (nil means
// FixedCost). Call StartPeriod to open the first period.
func NewPeriodManager(kind GameKind, catalog []Optimization, horizon Slot, policy CostPolicy) (*PeriodManager, error) {
	if err := validateServiceOpts(catalog, horizon); err != nil {
		return nil, err
	}
	if kind != Additive && kind != Substitutive {
		return nil, fmt.Errorf("sharedopt: unknown game kind %v", kind)
	}
	if policy == nil {
		policy = FixedCost
	}
	return &PeriodManager{
		kind:        kind,
		catalog:     append([]Optimization(nil), catalog...),
		horizon:     horizon,
		policy:      policy,
		implemented: make(map[OptID]bool),
	}, nil
}

// ErrPeriodOpen is returned by StartPeriod while a period is running.
var ErrPeriodOpen = errors.New("sharedopt: current period still open")

// StartPeriod opens the next pricing period, recomputing every
// optimization's cost with the manager's policy, and returns the
// period's Service. The previous period must have ended (all slots
// advanced, or ClosePeriod called on its service).
func (pm *PeriodManager) StartPeriod() (*Service, error) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	if pm.current != nil && !pm.current.closedNow() {
		return nil, ErrPeriodOpen
	}
	pm.harvestLocked()
	pm.period++
	opts := make([]Optimization, len(pm.catalog))
	for i, o := range pm.catalog {
		opts[i] = Optimization{
			ID:   o.ID,
			Cost: pm.policy(o, pm.period, pm.implemented[o.ID]),
		}
	}
	var svc *Service
	var err error
	if pm.kind == Additive {
		svc, err = NewAdditiveService(opts, pm.horizon)
	} else {
		svc, err = NewSubstitutiveService(opts, pm.horizon)
	}
	if err != nil {
		return nil, err
	}
	pm.current = svc
	return svc, nil
}

// harvestLocked folds the finished period's results into the running
// totals and the implemented map.
func (pm *PeriodManager) harvestLocked() {
	if pm.current == nil {
		return
	}
	pm.revenue += pm.current.Revenue()
	pm.cost += pm.current.CostIncurred()
	for _, o := range pm.catalog {
		if pm.current.implementedNow(o.ID) {
			pm.implemented[o.ID] = true
		} else {
			delete(pm.implemented, o.ID)
		}
	}
	pm.current = nil
}

// Period returns the 1-based index of the current (or last) period, 0
// before the first StartPeriod.
func (pm *PeriodManager) Period() int {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.period
}

// Totals returns revenue and cost accumulated over *finished* periods.
func (pm *PeriodManager) Totals() (revenue, cost Money) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.revenue, pm.cost
}

// closedNow reports whether the service's period has ended.
func (s *Service) closedNow() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// implementedNow reports whether the optimization was implemented in this
// service's period.
func (s *Service) implementedNow(opt OptID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.implementedLocked(opt)
}

func (s *Service) implementedLocked(opt OptID) bool {
	if s.kind == Additive {
		game, ok := s.additive.Game(opt)
		if !ok {
			return false
		}
		_, implemented := game.Implemented()
		return implemented
	}
	_, implemented := s.subst.Implemented(opt)
	return implemented
}

// Implemented returns the optimizations carried as implemented into the
// next period's cost recomputation, in ascending ID order. It reflects
// *finished* periods only, like Totals: the current period's
// implementations are harvested by the next StartPeriod.
func (pm *PeriodManager) Implemented() []OptID {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	out := make([]OptID, 0, len(pm.implemented))
	for id := range pm.implemented {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
