package sharedopt

import "testing"

func TestPeriodManagerLifecycle(t *testing.T) {
	catalog := []Optimization{{ID: 1, Cost: FromDollars(100)}}
	pm, err := NewPeriodManager(Additive, catalog, 2, FixedCost)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Period() != 0 {
		t.Fatalf("period = %d before start", pm.Period())
	}

	// Period 1: one user carries the whole cost.
	svc, err := pm.StartPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if pm.Period() != 1 {
		t.Fatalf("period = %d", pm.Period())
	}
	if err := svc.SubmitAdditiveBid(1, OnlineBid{User: 1, Start: 1, End: 2,
		Values: []Money{FromDollars(150), 0}}); err != nil {
		t.Fatal(err)
	}
	// Starting a new period while this one runs is rejected.
	if _, err := svc.AdvanceSlot(); err != nil {
		t.Fatal(err)
	}
	if _, err := pm.StartPeriod(); err != ErrPeriodOpen {
		t.Fatalf("expected ErrPeriodOpen, got %v", err)
	}
	if _, err := svc.AdvanceSlot(); err != nil {
		t.Fatal(err)
	}

	// Period 2 re-prices and runs independently.
	svc2, err := pm.StartPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if svc2 == svc {
		t.Fatal("new period should be a fresh service")
	}
	if err := svc2.SubmitAdditiveBid(1, OnlineBid{User: 2, Start: 1, End: 2,
		Values: []Money{FromDollars(150), 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc2.AdvanceSlot(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc2.AdvanceSlot(); err != nil {
		t.Fatal(err)
	}
	if _, err := pm.StartPeriod(); err != nil { // harvest period 2
		t.Fatal(err)
	}
	revenue, cost := pm.Totals()
	if revenue != FromDollars(200) || cost != FromDollars(200) {
		t.Errorf("totals: revenue %v cost %v, want $200 each", revenue, cost)
	}
}

func TestMaintenanceDiscountRepricesAfterImplementation(t *testing.T) {
	policy, err := MaintenanceDiscount(1, 4) // 25% of cost once built
	if err != nil {
		t.Fatal(err)
	}
	catalog := []Optimization{{ID: 1, Cost: FromDollars(100)}}
	pm, err := NewPeriodManager(Additive, catalog, 1, policy)
	if err != nil {
		t.Fatal(err)
	}

	// Period 1: full price; a user pays $100.
	svc, err := pm.StartPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.SubmitAdditiveBid(1, OnlineBid{User: 1, Start: 1, End: 1,
		Values: []Money{FromDollars(120)}}); err != nil {
		t.Fatal(err)
	}
	r, err := svc.AdvanceSlot()
	if err != nil {
		t.Fatal(err)
	}
	if r.Departures[1] != FromDollars(100) {
		t.Fatalf("period 1 payment %v, want $100", r.Departures[1])
	}

	// Period 2: the view is maintained, so the cost drops to $25.
	svc2, err := pm.StartPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if err := svc2.SubmitAdditiveBid(1, OnlineBid{User: 1, Start: 1, End: 1,
		Values: []Money{FromDollars(120)}}); err != nil {
		t.Fatal(err)
	}
	r, err = svc2.AdvanceSlot()
	if err != nil {
		t.Fatal(err)
	}
	if r.Departures[1] != FromDollars(25) {
		t.Fatalf("period 2 payment %v, want $25", r.Departures[1])
	}

	// Period 3: nobody bought it in period 2? They did — still cheap.
	// But if a period passes with no implementation, the price resets.
	svc3, err := pm.StartPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc3.AdvanceSlot(); err != nil { // nobody bids
		t.Fatal(err)
	}
	svc4, err := pm.StartPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if err := svc4.SubmitAdditiveBid(1, OnlineBid{User: 1, Start: 1, End: 1,
		Values: []Money{FromDollars(120)}}); err != nil {
		t.Fatal(err)
	}
	r, err = svc4.AdvanceSlot()
	if err != nil {
		t.Fatal(err)
	}
	if r.Departures[1] != FromDollars(100) {
		t.Fatalf("period 4 payment %v, want full $100 after a lapsed period", r.Departures[1])
	}
}

func TestMaintenanceDiscountValidation(t *testing.T) {
	for _, c := range []struct{ num, den int64 }{{-1, 2}, {3, 2}, {1, 0}} {
		if _, err := MaintenanceDiscount(c.num, c.den); err == nil {
			t.Errorf("MaintenanceDiscount(%d,%d) accepted", c.num, c.den)
		}
	}
	// A 0/1 discount must still keep costs positive.
	policy, err := MaintenanceDiscount(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := policy(Optimization{ID: 1, Cost: FromDollars(5)}, 2, true); got < 1 {
		t.Errorf("discounted cost %v must stay positive", got)
	}
}

func TestNewPeriodManagerValidation(t *testing.T) {
	good := []Optimization{{ID: 1, Cost: Dollar}}
	if _, err := NewPeriodManager(Additive, nil, 2, nil); err == nil {
		t.Error("empty catalog accepted")
	}
	if _, err := NewPeriodManager(GameKind(7), good, 2, nil); err == nil {
		t.Error("bad kind accepted")
	}
	if _, err := NewPeriodManager(Substitutive, good, 0, nil); err == nil {
		t.Error("zero horizon accepted")
	}
	// nil policy defaults to FixedCost.
	pm, err := NewPeriodManager(Substitutive, good, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pm.StartPeriod(); err != nil {
		t.Fatal(err)
	}
}
