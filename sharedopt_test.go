package sharedopt

import (
	"sync"
	"testing"
)

func TestPriceOne(t *testing.T) {
	res, err := PriceOne(FromDollars(100), map[UserID]Money{
		1: FromDollars(70), 2: FromDollars(70),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Serviced) != 2 || res.Share != FromDollars(50) {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunAddOffAndSubstOff(t *testing.T) {
	out, err := RunAddOff(
		[]Optimization{{ID: 1, Cost: FromDollars(10)}},
		[]AdditiveBid{{User: 1, Opt: 1, Value: FromDollars(12)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsImplemented(1) || out.Payment(1, 1) != FromDollars(10) {
		t.Fatalf("outcome = %+v", out)
	}

	sub, err := RunSubstOff(
		[]Optimization{{ID: 1, Cost: FromDollars(10)}, {ID: 2, Cost: FromDollars(4)}},
		[]SubstBid{{User: 1, Opts: []OptID{1, 2}, Value: FromDollars(12)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !sub.IsImplemented(2) || sub.IsImplemented(1) {
		t.Fatalf("substitutive outcome = %+v", sub)
	}
}

func TestMoneyHelpers(t *testing.T) {
	if FromCents(231) != FromDollars(2.31) {
		t.Error("FromCents broken")
	}
	m, err := ParseMoney("$2.31")
	if err != nil || m != FromDollars(2.31) {
		t.Errorf("ParseMoney: %v, %v", m, err)
	}
	if Dollar != 100*Cent {
		t.Error("denominations broken")
	}
}

// The full paper Example 3 through the public Service.
func TestAdditiveServiceLifecycle(t *testing.T) {
	svc, err := NewAdditiveService([]Optimization{{ID: 1, Cost: FromDollars(100)}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if svc.Kind() != Additive || svc.Horizon() != 3 || svc.Now() != 0 {
		t.Fatalf("fresh service state: kind=%v horizon=%d now=%d", svc.Kind(), svc.Horizon(), svc.Now())
	}
	mustBid := func(opt OptID, b OnlineBid) {
		t.Helper()
		if err := svc.SubmitAdditiveBid(opt, b); err != nil {
			t.Fatal(err)
		}
	}
	mustBid(1, OnlineBid{User: 1, Start: 1, End: 1, Values: []Money{FromDollars(101)}})
	mustBid(1, OnlineBid{User: 2, Start: 1, End: 3,
		Values: []Money{FromDollars(16), FromDollars(16), FromDollars(16)}})

	r1, err := svc.AdvanceSlot()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Departures[1] != FromDollars(100) {
		t.Fatalf("user 1 pays %v", r1.Departures[1])
	}
	mustBid(1, OnlineBid{User: 3, Start: 2, End: 2, Values: []Money{FromDollars(26)}})
	mustBid(1, OnlineBid{User: 4, Start: 2, End: 2, Values: []Money{FromDollars(26)}})
	if _, err := svc.AdvanceSlot(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AdvanceSlot(); err != nil {
		t.Fatal(err)
	}
	// Horizon reached: the service is closed.
	if _, err := svc.AdvanceSlot(); err != ErrPeriodOver {
		t.Fatalf("expected ErrPeriodOver, got %v", err)
	}
	if err := svc.SubmitAdditiveBid(1, OnlineBid{User: 9, Start: 4, End: 4,
		Values: []Money{Dollar}}); err != ErrPeriodOver {
		t.Fatalf("bid after close: %v", err)
	}

	for u, want := range map[UserID]Money{1: FromDollars(100), 2: FromDollars(25),
		3: FromDollars(25), 4: FromDollars(25)} {
		got, ok := svc.Invoice(u)
		if !ok || got != want {
			t.Errorf("invoice %d = %v (%v), want %v", u, got, ok, want)
		}
	}
	if svc.Revenue() != FromDollars(175) || svc.CostIncurred() != FromDollars(100) {
		t.Errorf("revenue %v cost %v", svc.Revenue(), svc.CostIncurred())
	}
	if svc.Surplus() != FromDollars(75) {
		t.Errorf("surplus %v", svc.Surplus())
	}
}

// Paper Example 8 through the public substitutive Service.
func TestSubstitutiveServiceLifecycle(t *testing.T) {
	svc, err := NewSubstitutiveService([]Optimization{
		{ID: 1, Cost: FromDollars(60)},
		{ID: 2, Cost: FromDollars(100)},
		{ID: 3, Cost: FromDollars(50)},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	mustBid := func(b OnlineSubstBid) {
		t.Helper()
		if err := svc.SubmitSubstitutiveBid(b); err != nil {
			t.Fatal(err)
		}
	}
	mustBid(OnlineSubstBid{User: 1, Opts: []OptID{1, 2}, Start: 1, End: 2,
		Values: []Money{FromDollars(100), FromDollars(100)}})
	if _, err := svc.AdvanceSlot(); err != nil {
		t.Fatal(err)
	}
	mustBid(OnlineSubstBid{User: 2, Opts: []OptID{1, 2, 3}, Start: 2, End: 3,
		Values: []Money{FromDollars(100), FromDollars(100)}})
	if _, err := svc.AdvanceSlot(); err != nil {
		t.Fatal(err)
	}
	mustBid(OnlineSubstBid{User: 3, Opts: []OptID{3}, Start: 3, End: 3,
		Values: []Money{FromDollars(100)}})
	if _, err := svc.AdvanceSlot(); err != nil {
		t.Fatal(err)
	}
	for u, want := range map[UserID]Money{1: FromDollars(30), 2: FromDollars(30),
		3: FromDollars(50)} {
		if got, _ := svc.Invoice(u); got != want {
			t.Errorf("invoice %d = %v, want %v", u, got, want)
		}
	}
	if svc.Surplus() < 0 {
		t.Errorf("negative surplus %v", svc.Surplus())
	}
}

func TestServiceKindMismatch(t *testing.T) {
	add, _ := NewAdditiveService([]Optimization{{ID: 1, Cost: Dollar}}, 2)
	if err := add.SubmitSubstitutiveBid(OnlineSubstBid{User: 1, Opts: []OptID{1},
		Start: 1, End: 1, Values: []Money{Dollar}}); err == nil {
		t.Error("substitutive bid on additive service accepted")
	}
	sub, _ := NewSubstitutiveService([]Optimization{{ID: 1, Cost: Dollar}}, 2)
	if err := sub.SubmitAdditiveBid(1, OnlineBid{User: 1, Start: 1, End: 1,
		Values: []Money{Dollar}}); err == nil {
		t.Error("additive bid on substitutive service accepted")
	}
}

func TestServiceConstructorValidation(t *testing.T) {
	if _, err := NewAdditiveService(nil, 2); err == nil {
		t.Error("no optimizations accepted")
	}
	if _, err := NewAdditiveService([]Optimization{{ID: 1, Cost: Dollar}}, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := NewAdditiveService([]Optimization{{ID: 1, Cost: 0}}, 2); err == nil {
		t.Error("zero-cost optimization accepted")
	}
	if _, err := NewSubstitutiveService([]Optimization{{ID: 1, Cost: Dollar},
		{ID: 1, Cost: Dollar}}, 2); err == nil {
		t.Error("duplicate optimization accepted")
	}
}

func TestClosePeriodEarly(t *testing.T) {
	svc, _ := NewAdditiveService([]Optimization{{ID: 1, Cost: FromDollars(10)}}, 10)
	if err := svc.SubmitAdditiveBid(1, OnlineBid{User: 1, Start: 1, End: 10,
		Values: []Money{FromDollars(20), 0, 0, 0, 0, 0, 0, 0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AdvanceSlot(); err != nil {
		t.Fatal(err)
	}
	settled, err := svc.ClosePeriod()
	if err != nil {
		t.Fatal(err)
	}
	if settled[1] != FromDollars(10) {
		t.Fatalf("settled = %v", settled)
	}
	// Idempotent.
	again, err := svc.ClosePeriod()
	if err != nil || len(again) != 0 {
		t.Errorf("second close: %v, %v", again, err)
	}
	if _, err := svc.AdvanceSlot(); err != ErrPeriodOver {
		t.Errorf("advance after close: %v", err)
	}
}

// The service must be safe under concurrent submissions.
func TestServiceConcurrentBids(t *testing.T) {
	svc, _ := NewAdditiveService([]Optimization{{ID: 1, Cost: FromDollars(50)}}, 2)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for u := 1; u <= 64; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			errs <- svc.SubmitAdditiveBid(1, OnlineBid{
				User: UserID(u), Start: 1, End: 2,
				Values: []Money{Dollar, Dollar},
			})
		}(u)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	r, err := svc.AdvanceSlot()
	if err != nil {
		t.Fatal(err)
	}
	// 64 users × $2 residual each, share 50/64 < 1: all serviced.
	if len(r.NewGrants) != 64 {
		t.Errorf("%d grants, want 64", len(r.NewGrants))
	}
}

func TestGameKindString(t *testing.T) {
	if Additive.String() != "additive" || Substitutive.String() != "substitutive" {
		t.Error("GameKind.String broken")
	}
	if GameKind(9).String() != "GameKind(9)" {
		t.Error("unknown kind string broken")
	}
}

func TestAstronomyScenarioFacade(t *testing.T) {
	spans := [AstronomyUsers]QuarterSpan{
		{Start: 1, Len: 4}, {Start: 1, Len: 2}, {Start: 3, Len: 2},
		{Start: 2, Len: 3}, {Start: 2, Len: 1}, {Start: 4, Len: 1},
	}
	opts, bids, horizon := AstronomyScenario(spans, 60)
	if len(opts) != 27 || horizon != 4 || len(bids) == 0 {
		t.Fatalf("scenario shape: %d opts, %d bids, horizon %d", len(opts), len(bids), horizon)
	}
	svc, err := NewAdditiveService(opts, horizon)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bids {
		if err := svc.SubmitAdditiveBid(b.Opt, b.Bid); err != nil {
			t.Fatal(err)
		}
	}
	for q := Slot(1); q <= horizon; q++ {
		if _, err := svc.AdvanceSlot(); err != nil {
			t.Fatal(err)
		}
	}
	if svc.Surplus() < 0 {
		t.Errorf("surplus %v", svc.Surplus())
	}
	if svc.CostIncurred() == 0 {
		t.Error("60 executions should justify at least one view")
	}
}

func TestRunFigureFacade(t *testing.T) {
	ids := FigureIDs()
	if len(ids) != 24 {
		t.Fatalf("FigureIDs = %v", ids)
	}
	fig, err := RunFigure("2a", 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "2a" || len(fig.Points) != 17 {
		t.Errorf("figure %s with %d points", fig.ID, len(fig.Points))
	}
	if _, err := RunFigure("zz", 5, 1); err == nil {
		t.Error("unknown figure accepted")
	}
}
