// Command experiments regenerates the figures of the paper's evaluation
// section (Section 7) and prints them as text tables or CSV.
//
// Usage:
//
//	experiments -fig all                  # every figure, text tables
//	experiments -fig 2a -trials 2000     # one figure, more trials
//	experiments -fig 1,1e,4e             # a comma-separated subset (CI shards)
//	experiments -derived                 # the engine-derived variants only
//	experiments -fig 1 -format csv       # CSV for plotting
//	experiments -fig 1 -format sha256    # one "hash  id" line per figure
//	experiments -fig 1 -exhaustive       # figure 1 over all 10^6 combos
//
// Effort semantics: -trials is the Monte-Carlo trial count per point for
// figures 2–5 and the number of sampled quarter-span assignments for
// figure 1 (unless -exhaustive).
//
// Figure IDs follow the registry's conventions: bare IDs are the paper's
// published figures, an "e" suffix (1e, 4e) marks the astronomy game
// measured end to end on the query engine, a "v" suffix (2av ... 5bv)
// marks the published synthetic game with user values drawn from the
// engine-measured savings distribution. -derived sweeps exactly the
// suffixed set (overriding -fig); all its members share one memoized
// universe measurement per run.
//
// The sha256 format hashes each figure's CSV bytes (at the given trials
// and seed) and prints "hash  id" lines. FIGURES.sha256 at the repo root
// is the committed output of `-fig all -format sha256` at the defaults;
// CI regenerates it and fails on any diff, so a change that perturbs a
// figure must update the golden file visibly.
//
// Beyond the figures, -hypothesis runs the machine-checked behavioral
// claims of internal/hypothesis:
//
//	experiments -hypothesis all              # every hypothesis, text report
//	experiments -hypothesis T1,C2            # a subset
//	experiments -hypothesis all -format sha256   # HYPOTHESES.sha256 lines
//	experiments -hypothesis all -format report   # crc-framed JSON rows
//
// HYPOTHESES.sha256 at the repo root is the committed output of
// `-hypothesis all -format sha256` at the defaults, gated by CI exactly
// like FIGURES.sha256. `-fig help` lists every figure ID and every
// hypothesis with its one-line claim.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sharedopt/internal/experiments"
	"sharedopt/internal/hypothesis"
)

func main() {
	var (
		fig = flag.String("fig", "all", "figures to regenerate: all, or a comma-separated subset of "+
			strings.Join(experiments.FigureIDs(), ", "))
		derived    = flag.Bool("derived", false, "regenerate only the engine-derived variants (overrides -fig; equivalent to -fig "+strings.Join(experiments.DerivedFigureIDs(), ",")+")")
		trials     = flag.Int("trials", 1000, "Monte-Carlo trials per point (samples for figure 1)")
		seed       = flag.Uint64("seed", 42, "random seed")
		format     = flag.String("format", "table", "output format: table, csv or sha256 (plus report for -hypothesis)")
		exhaustive = flag.Bool("exhaustive", false, "figure 1 only: enumerate all 10^6 span assignments")
		hyp        = flag.String("hypothesis", "", "hypotheses to run instead of figures: all, or a comma-separated subset of "+
			strings.Join(hypothesis.IDs(), ", "))
	)
	flag.Parse()
	if *derived {
		*fig = "derived"
	}
	if *hyp != "" {
		if err := runHypotheses(os.Stdout, *hyp, *trials, *seed, *format); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdout, *fig, *trials, *seed, *format, *exhaustive); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// runHypotheses runs the selected hypotheses and renders the report.
func runHypotheses(w io.Writer, hyp string, trials int, seed uint64, format string) error {
	var ids []string
	if hyp != "all" {
		ids = strings.Split(hyp, ",")
	}
	report, err := hypothesis.RunAll(ids, trials, seed)
	if err != nil {
		return err
	}
	switch format {
	case "table":
		fmt.Fprint(w, report.Table())
	case "csv":
		fmt.Fprint(w, report.CSV())
	case "sha256":
		fmt.Fprint(w, report.SHA256Lines())
	case "report":
		framed, err := hypothesis.EncodeReport(report)
		if err != nil {
			return err
		}
		_, err = w.Write(framed)
		return err
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	return nil
}

// printCatalog lists every figure ID and every registered hypothesis
// with its one-line claim (the `-fig help` listing).
func printCatalog(w io.Writer) {
	fmt.Fprintln(w, "Figures (-fig):")
	fmt.Fprintf(w, "  %s\n", strings.Join(experiments.FigureIDs(), ", "))
	fmt.Fprintln(w, "Hypotheses (-hypothesis):")
	for _, h := range hypothesis.All() {
		fmt.Fprintf(w, "  %-4s [%s] %s\n", h.ID, h.Family, h.Claim)
	}
}

func run(w io.Writer, fig string, trials int, seed uint64, format string, exhaustive bool) error {
	if fig == "help" {
		printCatalog(w)
		return nil
	}
	if format != "table" && format != "csv" && format != "sha256" {
		return fmt.Errorf("unknown format %q", format)
	}
	ids := strings.Split(fig, ",")
	switch fig {
	case "all":
		ids = experiments.FigureIDs()
	case "derived":
		ids = experiments.DerivedFigureIDs()
	}
	for _, id := range ids {
		var figure *experiments.Figure
		var err error
		if id == "1" && exhaustive {
			cfg := experiments.Fig1DefaultConfig(1, seed)
			cfg.Exhaustive = true
			figure, err = experiments.Fig1(cfg)
		} else {
			figure, err = experiments.Run(id, trials, seed)
		}
		if err != nil {
			return err
		}
		switch format {
		case "table":
			fmt.Fprintln(w, figure.Table())
		case "csv":
			fmt.Fprintf(w, "# Figure %s: %s\n%s\n", figure.ID, figure.Title, strings.TrimRight(figure.CSV(), "\n"))
		case "sha256":
			fmt.Fprintf(w, "%x  %s\n", sha256.Sum256([]byte(figure.CSV())), figure.ID)
		}
	}
	return nil
}
