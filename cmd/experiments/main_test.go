package main

import (
	"os"
	"strings"
	"testing"

	"sharedopt/internal/experiments"
)

// Every registered figure must have a committed golden hash, in registry
// order. The figure-determinism CI job runs in shards, and its coverage
// step only checks the shard lists against FIGURES.sha256 — this test
// closes the remaining gap, so a figure added to the registry without a
// golden entry fails the test job instead of silently escaping the
// determinism gate.
func TestGoldenHashesCoverRegistry(t *testing.T) {
	raw, err := os.ReadFile("../../FIGURES.sha256")
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed FIGURES.sha256 line %q", line)
		}
		ids = append(ids, fields[1])
	}
	want := experiments.FigureIDs()
	if len(ids) != len(want) {
		t.Fatalf("FIGURES.sha256 lists %v, registry has %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("FIGURES.sha256 lists %v, registry has %v", ids, want)
		}
	}
}

func TestRunSingleFigureTable(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "2a", 5, 1, "table", false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Figure 2a", "AddOn Utility", "Regret Balance", "0.03"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCSVFormat(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "5a", 3, 1, "csv", false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.HasPrefix(got, "# Figure 5a") {
		t.Errorf("CSV header missing: %q", got[:40])
	}
	if !strings.Contains(got, "Optimization cost ($),SubstOn Utility,Regret Utility") {
		t.Errorf("CSV column header missing:\n%s", got)
	}
}

func TestRunAllFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("all-figure sweep in short mode")
	}
	var out strings.Builder
	if err := run(&out, "all", 3, 1, "table", false); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"Figure 1", "Figure 2a", "Figure 5b", "Figure E3"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("all-run missing %s", id)
		}
	}
}

// The sha256 format is the figure-determinism gate: the same figure at
// the same trials and seed hashes identically across runs, different
// seeds hash differently, and each line is "hash  id".
func TestRunSHA256Format(t *testing.T) {
	hash := func(seed uint64) string {
		t.Helper()
		var out strings.Builder
		if err := run(&out, "5a", 3, seed, "sha256", false); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	first := hash(1)
	fields := strings.Fields(strings.TrimSpace(first))
	if len(fields) != 2 || len(fields[0]) != 64 || fields[1] != "5a" {
		t.Fatalf("sha256 line = %q", first)
	}
	if again := hash(1); again != first {
		t.Errorf("same seed hashed differently:\n%s%s", first, again)
	}
	if other := hash(2); other == first {
		t.Errorf("different seed produced identical hash: %s", first)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "2a", 5, 1, "xml", false); err == nil {
		t.Error("bad format accepted")
	}
	if err := run(&out, "zz", 5, 1, "table", false); err == nil {
		t.Error("unknown figure accepted")
	}
}

// The -derived sweep resolves to exactly the registry's derived figure
// set, in order, one hash line each.
func TestRunDerivedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("derived sweep in short mode")
	}
	var out strings.Builder
	if err := run(&out, "derived", 2, 1, "sha256", false); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	want := experiments.DerivedFigureIDs()
	if len(lines) != len(want) {
		t.Fatalf("%d hash lines for derived set %v", len(lines), want)
	}
	for i, line := range lines {
		fields := strings.Fields(line)
		if len(fields) != 2 || fields[1] != want[i] {
			t.Errorf("line %d = %q, want id %s", i, line, want[i])
		}
	}
}
