package main

import (
	"os"
	"strings"
	"testing"

	"sharedopt/internal/experiments"
	"sharedopt/internal/hypothesis"
)

// Every registered figure must have a committed golden hash, in registry
// order. The figure-determinism CI job runs in shards, and its coverage
// step only checks the shard lists against FIGURES.sha256 — this test
// closes the remaining gap, so a figure added to the registry without a
// golden entry fails the test job instead of silently escaping the
// determinism gate.
func TestGoldenHashesCoverRegistry(t *testing.T) {
	raw, err := os.ReadFile("../../FIGURES.sha256")
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed FIGURES.sha256 line %q", line)
		}
		ids = append(ids, fields[1])
	}
	want := experiments.FigureIDs()
	if len(ids) != len(want) {
		t.Fatalf("FIGURES.sha256 lists %v, registry has %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("FIGURES.sha256 lists %v, registry has %v", ids, want)
		}
	}
}

func TestRunSingleFigureTable(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "2a", 5, 1, "table", false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Figure 2a", "AddOn Utility", "Regret Balance", "0.03"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCSVFormat(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "5a", 3, 1, "csv", false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.HasPrefix(got, "# Figure 5a") {
		t.Errorf("CSV header missing: %q", got[:40])
	}
	if !strings.Contains(got, "Optimization cost ($),SubstOn Utility,Regret Utility") {
		t.Errorf("CSV column header missing:\n%s", got)
	}
}

func TestRunAllFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("all-figure sweep in short mode")
	}
	var out strings.Builder
	if err := run(&out, "all", 3, 1, "table", false); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"Figure 1", "Figure 2a", "Figure 5b", "Figure E3"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("all-run missing %s", id)
		}
	}
}

// The sha256 format is the figure-determinism gate: the same figure at
// the same trials and seed hashes identically across runs, different
// seeds hash differently, and each line is "hash  id".
func TestRunSHA256Format(t *testing.T) {
	hash := func(seed uint64) string {
		t.Helper()
		var out strings.Builder
		if err := run(&out, "5a", 3, seed, "sha256", false); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	first := hash(1)
	fields := strings.Fields(strings.TrimSpace(first))
	if len(fields) != 2 || len(fields[0]) != 64 || fields[1] != "5a" {
		t.Fatalf("sha256 line = %q", first)
	}
	if again := hash(1); again != first {
		t.Errorf("same seed hashed differently:\n%s%s", first, again)
	}
	if other := hash(2); other == first {
		t.Errorf("different seed produced identical hash: %s", first)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "2a", 5, 1, "xml", false); err == nil {
		t.Error("bad format accepted")
	}
	if err := run(&out, "zz", 5, 1, "table", false); err == nil {
		t.Error("unknown figure accepted")
	}
}

// The -derived sweep resolves to exactly the registry's derived figure
// set, in order, one hash line each.
func TestRunDerivedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("derived sweep in short mode")
	}
	var out strings.Builder
	if err := run(&out, "derived", 2, 1, "sha256", false); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	want := experiments.DerivedFigureIDs()
	if len(lines) != len(want) {
		t.Fatalf("%d hash lines for derived set %v", len(lines), want)
	}
	for i, line := range lines {
		fields := strings.Fields(line)
		if len(fields) != 2 || fields[1] != want[i] {
			t.Errorf("line %d = %q, want id %s", i, line, want[i])
		}
	}
}

// Every registered hypothesis must have a committed golden hash, in
// registry order — the hypothesis-determinism CI job diffs against
// HYPOTHESES.sha256, and this closes the same gap as the figures test
// above: a hypothesis added without a golden entry fails here.
func TestHypothesisGoldenHashesCoverRegistry(t *testing.T) {
	raw, err := os.ReadFile("../../HYPOTHESES.sha256")
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 || len(fields[0]) != 64 {
			t.Fatalf("malformed HYPOTHESES.sha256 line %q", line)
		}
		ids = append(ids, fields[1])
	}
	want := hypothesis.IDs()
	if len(ids) != len(want) {
		t.Fatalf("HYPOTHESES.sha256 lists %v, registry has %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("HYPOTHESES.sha256 lists %v, registry has %v", ids, want)
		}
	}
}

func TestRunHypothesesFormats(t *testing.T) {
	var table strings.Builder
	if err := runHypotheses(&table, "T1,B3", 20, 1, "table"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"T1", "truthfulness", "B3", "arrivals", "margin="} {
		if !strings.Contains(table.String(), want) {
			t.Errorf("table missing %q:\n%s", want, table.String())
		}
	}

	var csv strings.Builder
	if err := runHypotheses(&csv, "T1", 20, 1, "csv"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "id,family,trials,verdict,") {
		t.Errorf("csv header missing:\n%s", csv.String())
	}

	var sha strings.Builder
	if err := runHypotheses(&sha, "all", 20, 1, "sha256"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sha.String()), "\n")
	if len(lines) != len(hypothesis.IDs()) {
		t.Fatalf("%d sha lines for %d hypotheses", len(lines), len(hypothesis.IDs()))
	}
	var sha2 strings.Builder
	if err := runHypotheses(&sha2, "all", 20, 1, "sha256"); err != nil {
		t.Fatal(err)
	}
	if sha.String() != sha2.String() {
		t.Error("identical hypothesis runs hashed differently")
	}

	var framed strings.Builder
	if err := runHypotheses(&framed, "T1,C1", 20, 1, "report"); err != nil {
		t.Fatal(err)
	}
	rows, _, torn := hypothesis.ParseReport([]byte(framed.String()))
	if torn || len(rows) != 2 {
		t.Fatalf("framed output parsed to %d rows, torn=%v", len(rows), torn)
	}
}

func TestRunHypothesesRejectsBadInputs(t *testing.T) {
	var out strings.Builder
	if err := runHypotheses(&out, "T1", 20, 1, "xml"); err == nil {
		t.Error("bad format accepted")
	}
	if err := runHypotheses(&out, "zz", 20, 1, "table"); err == nil {
		t.Error("unknown hypothesis accepted")
	}
}

// -fig help lists the whole catalog: every figure ID and every
// hypothesis with its one-line claim, straight from the registries.
func TestRunHelpListsCatalog(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "help", 5, 1, "table", false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, id := range experiments.FigureIDs() {
		if !strings.Contains(got, id) {
			t.Errorf("help missing figure %s", id)
		}
	}
	for _, h := range hypothesis.All() {
		if !strings.Contains(got, h.ID) || !strings.Contains(got, h.Claim) {
			t.Errorf("help missing hypothesis %s: %q", h.ID, h.Claim)
		}
	}
}
