package main

import (
	"strings"
	"testing"
)

func TestRunSingleFigureTable(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "2a", 5, 1, "table", false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Figure 2a", "AddOn Utility", "Regret Balance", "0.03"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCSVFormat(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "5a", 3, 1, "csv", false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.HasPrefix(got, "# Figure 5a") {
		t.Errorf("CSV header missing: %q", got[:40])
	}
	if !strings.Contains(got, "Optimization cost ($),SubstOn Utility,Regret Utility") {
		t.Errorf("CSV column header missing:\n%s", got)
	}
}

func TestRunAllFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("all-figure sweep in short mode")
	}
	var out strings.Builder
	if err := run(&out, "all", 3, 1, "table", false); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"Figure 1", "Figure 2a", "Figure 5b", "Figure E3"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("all-run missing %s", id)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "2a", 5, 1, "xml", false); err == nil {
		t.Error("bad format accepted")
	}
	if err := run(&out, "zz", 5, 1, "table", false); err == nil {
		t.Error("unknown figure accepted")
	}
}
