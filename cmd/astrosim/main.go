// Command astrosim generates a synthetic universe, runs the paper's
// halo-tracking workload on the built-in query engine with and without
// the per-snapshot materialized views, and prints the resulting cost
// structure: per-user baselines, per-view savings, and the cents-per-
// execution value table it implies (compare with the constants the paper
// measured on real data: 18/7/3/16/9/4 cents for the final snapshot's
// view, 1 cent for the others).
//
// Usage:
//
//	astrosim                         # paper-shaped defaults
//	astrosim -particles 20000 -snapshots 27 -seed 3
//	astrosim -workers 1              # serial measurement (same output)
//
// The measurement fans out over a worker pool (one tracker per worker)
// and is byte-identical at any worker count, so -workers only changes
// how fast the table appears.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"text/tabwriter"

	"sharedopt/internal/astro"
	"sharedopt/internal/engine"
)

func main() {
	var (
		particles  = flag.Int("particles", 4000, "particles per snapshot")
		halos      = flag.Int("halos", 12, "halos seeded in the universe")
		snapshots  = flag.Int("snapshots", 27, "number of snapshots")
		seed       = flag.Uint64("seed", 1, "generation seed")
		linkLen    = flag.Float64("link", 1.8, "friends-of-friends linking length")
		minMembers = flag.Int("min-members", 8, "minimum halo size")
		perSet     = flag.Int("halos-per-set", 3, "tracked halos per astronomer group")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "measurement workers (output is identical at any count)")
	)
	flag.Parse()
	cfg := astro.DefaultConfig()
	cfg.Particles = *particles
	cfg.Halos = *halos
	cfg.Snapshots = *snapshots
	cfg.Seed = *seed
	if err := run(os.Stdout, cfg, *linkLen, *minMembers, *perSet, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "astrosim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, cfg astro.Config, linkLen float64, minMembers, perSet, workers int) error {
	fmt.Fprintf(w, "generating universe: %d particles × %d snapshots, %d halos (seed %d)\n",
		cfg.Particles, cfg.Snapshots, cfg.Halos, cfg.Seed)
	u, err := astro.Generate(cfg)
	if err != nil {
		return err
	}
	tracker := astro.NewTracker(u, linkLen, minMembers)
	users, err := astro.DefaultUsers(tracker, perSet)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "measuring workload cost with and without each materialized view...")
	report, err := astro.MeasureSavingsParallel(u, users, linkLen, minMembers,
		engine.DefaultCostModel(), workers)
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "user\tstride\tbaseline (units)\tbaseline (sim time)\tfinal-view saving\tbest other view")
	final := cfg.Snapshots
	for i, spec := range users {
		bestOther := int64(0)
		for s := 1; s < final; s++ {
			if v := report.SavingUnits[i][s-1]; v > bestOther {
				bestOther = v
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%v\t%d\t%d\n",
			spec.Name, spec.Stride,
			report.BaselineUnits[i], report.BaselineDuration(i).Round(1e7),
			report.SavingUnits[i][final-1], bestOther)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	cents, err := report.DeriveSavingsCents(18)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nderived per-execution savings in cents (anchored: user 1 final view = 18¢):")
	fmt.Fprintln(w, "paper's measured values for the final view were 18/7/3/16/9/4¢, others 1¢")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "user\tfinal view\tmedian other used view")
	for i, spec := range users {
		var used []int64
		for s := 1; s < final; s++ {
			if cents[i][s-1] > 0 {
				used = append(used, cents[i][s-1])
			}
		}
		med := int64(0)
		if len(used) > 0 {
			med = used[len(used)/2]
		}
		fmt.Fprintf(tw, "%s\t%d¢\t%d¢\n", spec.Name, cents[i][final-1], med)
	}
	return tw.Flush()
}
