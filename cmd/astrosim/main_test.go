package main

import (
	"strings"
	"testing"

	"sharedopt/internal/astro"
)

// tinyConfig keeps the end-to-end measurement fast.
func tinyConfig() astro.Config {
	cfg := astro.DefaultConfig()
	cfg.Particles = 500
	cfg.Halos = 8
	cfg.Snapshots = 13
	cfg.Seed = 7
	return cfg
}

func TestAstrosimEndToEnd(t *testing.T) {
	var out strings.Builder
	if err := run(&out, tinyConfig(), 2.5, 5, 2, 2); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"generating universe: 500 particles × 13 snapshots",
		"baseline (units)",
		"γ1-full",
		"γ2-every4th",
		"derived per-execution savings",
		"18¢", // the anchored final-view saving
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q\n%s", want, got)
		}
	}
}

func TestAstrosimRejectsBadConfig(t *testing.T) {
	cfg := tinyConfig()
	cfg.Particles = 0
	if err := run(&strings.Builder{}, cfg, 2.5, 5, 2, 2); err == nil {
		t.Error("invalid universe accepted")
	}
	if err := run(&strings.Builder{}, tinyConfig(), 2.5, 5, 1000, 2); err == nil {
		t.Error("absurd halo demand accepted")
	}
}
