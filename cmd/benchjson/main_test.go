package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sharedopt/internal/benchkit"
)

// The full benchmark sweep takes seconds per entry, so the test exercises
// only the file plumbing and the snapshot schema round-trip.
func TestSnapshotRoundTrip(t *testing.T) {
	snap := snapshot{
		GoVersion:  "go1.24",
		GOMAXPROCS: 4,
		Results: []benchkit.Result{
			{Name: "Shapley1k", Iterations: 100, NsPerOp: 12345.6, BytesPerOp: 64, AllocsPerOp: 2},
		},
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 || back.Results[0].Name != "Shapley1k" {
		t.Fatalf("round trip lost results: %+v", back)
	}
	if back.Results[0].AllocsPerOp != 2 {
		t.Fatalf("allocs = %d, want 2", back.Results[0].AllocsPerOp)
	}
}

// Loading a baseline tolerates the extra hand-written fields committed
// snapshots carry, and rejects files with no machine-readable results.
func TestLoadSnapshotHandWrittenFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_X.json")
	blob := `{
  "pr": 2,
  "method": "notes for humans",
  "go_version": "go1.24",
  "gomaxprocs": 1,
  "benchmarks": [{"name": "ignored", "before": {}, "after": {}}],
  "results": [{"name": "SubstOnGame", "iterations": 10, "ns_per_op": 100.0}]
}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := loadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Results) != 1 || snap.Results[0].Name != "SubstOnGame" {
		t.Fatalf("results = %+v", snap.Results)
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"results": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSnapshot(empty); err == nil {
		t.Fatal("baseline without results accepted")
	}
}

// The benchmark registry must contain every tracked benchmark so a
// future edit cannot silently drop one from the perf trajectory.
func TestKeyBenchmarksRegistered(t *testing.T) {
	want := map[string]bool{
		"Shapley1k": true, "Shapley10k": true, "Shapley100k": true,
		"AddOnGame": true, "SubstOnGame": true,
		"ServiceGame": true, "ServiceGameJournaled": true, "IngestThroughput": true,
		"ShardedIngest1": true, "ShardedIngest4": true, "ShardedIngest4Obs": true,
		"ShardedIngest4Net": true,
		"EngineHashJoin":    true, "EngineHashJoinParallel4": true,
		"EngineBuildJoin": true, "EngineBuildJoinParallel4": true,
		"EngineOrderBy": true, "EngineOrderByParallel4": true,
		"HaloFinder": true, "HaloFinderWarm": true, "HaloFinderParallel4": true,
		"AstroWorkload": true, "AstroWorkloadParallel4": true,
	}
	for _, kb := range benchkit.Key() {
		if !want[kb.Name] {
			t.Errorf("unexpected benchmark %q", kb.Name)
		}
		delete(want, kb.Name)
		if kb.Body == nil {
			t.Errorf("benchmark %q has no body", kb.Name)
		}
	}
	for name := range want {
		t.Errorf("benchmark %q missing from Key()", name)
	}
}

// A baseline diff must not silently drop Extra metrics: a key present
// in the baseline but gone from the current run fails the diff by name,
// while a key new in the current run is informational only.
func TestDiffAgainstExtraUnion(t *testing.T) {
	diff := func(t *testing.T, baseline, current []benchkit.Result) (string, error) {
		t.Helper()
		f, err := os.CreateTemp(t.TempDir(), "diff")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		diffErr := diffAgainst(f, baseline, current, 0.30)
		out, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(out), diffErr
	}
	baseline := []benchkit.Result{{Name: "ShardedIngest4", NsPerOp: 1000,
		Extra: map[string]float64{"bids/s": 5000, "p99-adv-ns": 900}}}

	// Dropped metric: ns/op is fine, but "p99-adv-ns" vanished.
	out, err := diff(t, baseline, []benchkit.Result{{Name: "ShardedIngest4", NsPerOp: 1000,
		Extra: map[string]float64{"bids/s": 5100}}})
	if err == nil {
		t.Fatalf("dropped metric passed the diff:\n%s", out)
	}
	if !strings.Contains(out, "no longer reported") || !strings.Contains(out, "p99-adv-ns") {
		t.Errorf("dropped metric not named:\n%s", out)
	}

	// New metric: reported, but not a failure.
	out, err = diff(t, baseline, []benchkit.Result{{Name: "ShardedIngest4", NsPerOp: 1000,
		Extra: map[string]float64{"bids/s": 5100, "p99-adv-ns": 910, "p50-adv-ns": 400}}})
	if err != nil {
		t.Fatalf("new metric failed the diff: %v\n%s", err, out)
	}
	if !strings.Contains(out, "new metric") || !strings.Contains(out, "p50-adv-ns") {
		t.Errorf("new metric not reported:\n%s", out)
	}
}

// The pair-mode snapshot round-trips and marshals the gating fields CI
// reads from the log.
func TestPairSnapshotRoundTrip(t *testing.T) {
	snap := pairSnapshot{
		GoVersion:  "go1.24",
		GOMAXPROCS: 4,
		NumCPU:     4,
		Pairs: []benchkit.PairResult{{
			Name: "EngineHashJoin/parallel4-vs-serial", Rounds: 3,
			BaselineNsPerOp: 2000, CandidateNs: 1000,
			Speedup: 2.0, RequiredSpeedup: 1.5, FullGate: true, Pass: true,
		}},
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back pairSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Pairs) != 1 || !back.Pairs[0].Pass || back.Pairs[0].Speedup != 2.0 {
		t.Fatalf("round trip lost pair data: %+v", back)
	}
}
