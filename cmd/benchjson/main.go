// Command benchjson runs the repo's key benchmarks in-process (the same
// bodies bench_test.go wraps) and writes the measurements as JSON, so
// every PR can commit a BENCH_*.json snapshot and the perf trajectory
// stays machine-readable.
//
// Two gating modes exist. -baseline diffs the fresh run against a
// committed snapshot and exits nonzero on any ns/op regression beyond
// the threshold; it is inherently noisy across machines, since the
// snapshot was recorded on different hardware. -pair instead runs each
// registered baseline/candidate pair interleaved in this process and
// compares medians, so runner speed cancels out and only the *relative*
// claim (e.g. "the 4-worker hash join is ≥1.5x the serial one") is
// enforced — this is what CI gates on.
//
// Usage:
//
//	benchjson                                  # JSON to stdout
//	benchjson -o BENCH.json                    # JSON to a file
//	benchjson -baseline BENCH_PR2.json         # fail on >30% regressions
//	benchjson -baseline B.json -threshold 0.5  # custom threshold
//	benchjson -pair                            # relative pair gate (CI)
//	benchjson -pair -rounds 5 -o PAIRS.json    # more interleaved rounds
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"sharedopt/internal/benchkit"
)

// snapshot is the file format of a BENCH_*.json perf snapshot. Committed
// snapshots may carry extra hand-written fields (method notes,
// before/after tables); only these keys are machine-read.
type snapshot struct {
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Results    []benchkit.Result `json:"results"`
}

// errRegression signals a baseline diff failure already reported to
// stderr.
var errRegression = fmt.Errorf("benchmark regression against baseline")

func main() {
	var (
		out       = flag.String("o", "", "output file (default stdout)")
		baseline  = flag.String("baseline", "", "committed BENCH_*.json snapshot to diff against")
		threshold = flag.Float64("threshold", 0.30, "ns/op regression tolerance as a fraction (with -baseline)")
		pair      = flag.Bool("pair", false, "run the relative baseline/candidate pair gate instead of the key sweep")
		rounds    = flag.Int("rounds", 3, "interleaved measurement rounds per pair side (with -pair)")
	)
	flag.Parse()
	var err error
	if *pair {
		err = runPairMode(*out, *rounds)
	} else {
		err = run(*out, *baseline, *threshold)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// pairSnapshot is the -pair mode's JSON shape.
type pairSnapshot struct {
	GoVersion  string                `json:"go_version"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	NumCPU     int                   `json:"num_cpu"`
	Pairs      []benchkit.PairResult `json:"pairs"`
}

// errPairGate signals a pair-gate failure already reported to stderr.
var errPairGate = fmt.Errorf("relative pair gate failed")

// runPairMode measures every registered pair with interleaved rounds and
// fails when any pair misses its required speedup. The full-vs-relaxed
// gate choice keys on GOMAXPROCS, not NumCPU: a cgroup-quota-limited
// runner may report many CPUs while only a few threads can actually run,
// and GOMAXPROCS bounds the parallelism the candidate bodies can use.
func runPairMode(out string, rounds int) error {
	snap := pairSnapshot{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Pairs:      benchkit.RunPairs(benchkit.Pairs(), rounds, runtime.GOMAXPROCS(0)),
	}
	if err := writeJSON(out, snap); err != nil {
		return err
	}
	failed := 0
	for _, p := range snap.Pairs {
		gate := "full"
		if !p.FullGate {
			gate = "relaxed (few CPUs)"
		}
		status := "ok"
		if !p.Pass {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(os.Stderr, "benchjson: pair %s: %.2fx (need %.2fx, %s gate, medians of %d) %s\n",
			p.Name, p.Speedup, p.RequiredSpeedup, gate, p.Rounds, status)
	}
	if failed > 0 {
		return errPairGate
	}
	return nil
}

// writeJSON marshals v indented with a trailing newline to the named
// file, or to stdout when out is empty.
func writeJSON(out string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func run(out, baseline string, threshold float64) error {
	snap := snapshot{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results:    benchkit.RunKey(),
	}
	if err := writeJSON(out, snap); err != nil {
		return err
	}
	if baseline == "" {
		return nil
	}
	base, err := loadSnapshot(baseline)
	if err != nil {
		return err
	}
	return diffAgainst(os.Stderr, base.Results, snap.Results, threshold)
}

// loadSnapshot reads a committed BENCH_*.json file.
func loadSnapshot(path string) (snapshot, error) {
	var snap snapshot
	raw, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		return snap, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if len(snap.Results) == 0 {
		return snap, fmt.Errorf("baseline %s has no machine-readable results", path)
	}
	return snap, nil
}

// diffAgainst reports regressions of current vs baseline to w and
// returns errRegression if any exceeded the threshold. Custom metrics
// (Result.Extra) are diffed over the union of baseline and current
// keys: a tracked metric a benchmark stopped reporting fails the diff
// (it would otherwise vanish silently — nothing compares a key that is
// only in the baseline), while metrics new in the current run are
// reported informationally and pass.
func diffAgainst(w *os.File, baseline, current []benchkit.Result, threshold float64) error {
	msgs := benchkit.Regressions(baseline, current, threshold)
	for _, m := range msgs {
		fmt.Fprintln(w, "benchjson: regression:", m)
	}
	missing, added := benchkit.ExtraDrift(baseline, current)
	for _, m := range missing {
		fmt.Fprintln(w, "benchjson: tracked metric no longer reported:", m)
	}
	for _, a := range added {
		fmt.Fprintln(w, "benchjson: new metric (no trajectory yet):", a)
	}
	if len(msgs)+len(missing) > 0 {
		return errRegression
	}
	fmt.Fprintf(w, "benchjson: no ns/op regression beyond %.0f%% and no dropped metrics against baseline (%d benchmarks)\n",
		threshold*100, len(baseline))
	return nil
}
