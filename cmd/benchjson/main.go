// Command benchjson runs the repo's key benchmarks in-process (the same
// bodies bench_test.go wraps) and writes the measurements as JSON, so
// every PR can commit a BENCH_*.json snapshot and the perf trajectory
// stays machine-readable. With -baseline it additionally diffs the fresh
// run against a committed snapshot and exits nonzero on any ns/op
// regression beyond the threshold — the CI guard against silently
// losing a hot-path win.
//
// Usage:
//
//	benchjson                                  # JSON to stdout
//	benchjson -o BENCH.json                    # JSON to a file
//	benchjson -baseline BENCH_PR2.json         # fail on >30% regressions
//	benchjson -baseline B.json -threshold 0.5  # custom threshold
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"sharedopt/internal/benchkit"
)

// snapshot is the file format of a BENCH_*.json perf snapshot. Committed
// snapshots may carry extra hand-written fields (method notes,
// before/after tables); only these keys are machine-read.
type snapshot struct {
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Results    []benchkit.Result `json:"results"`
}

// errRegression signals a baseline diff failure already reported to
// stderr.
var errRegression = fmt.Errorf("benchmark regression against baseline")

func main() {
	var (
		out       = flag.String("o", "", "output file (default stdout)")
		baseline  = flag.String("baseline", "", "committed BENCH_*.json snapshot to diff against")
		threshold = flag.Float64("threshold", 0.30, "ns/op regression tolerance as a fraction (with -baseline)")
	)
	flag.Parse()
	if err := run(*out, *baseline, *threshold); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out, baseline string, threshold float64) error {
	snap := snapshot{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results:    benchkit.RunKey(),
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	if baseline == "" {
		return nil
	}
	base, err := loadSnapshot(baseline)
	if err != nil {
		return err
	}
	return diffAgainst(os.Stderr, base.Results, snap.Results, threshold)
}

// loadSnapshot reads a committed BENCH_*.json file.
func loadSnapshot(path string) (snapshot, error) {
	var snap snapshot
	raw, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		return snap, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if len(snap.Results) == 0 {
		return snap, fmt.Errorf("baseline %s has no machine-readable results", path)
	}
	return snap, nil
}

// diffAgainst reports regressions of current vs baseline to w and
// returns errRegression if any exceeded the threshold.
func diffAgainst(w *os.File, baseline, current []benchkit.Result, threshold float64) error {
	msgs := benchkit.Regressions(baseline, current, threshold)
	for _, m := range msgs {
		fmt.Fprintln(w, "benchjson: regression:", m)
	}
	if len(msgs) > 0 {
		return errRegression
	}
	fmt.Fprintf(w, "benchjson: no ns/op regression beyond %.0f%% against baseline (%d benchmarks)\n",
		threshold*100, len(baseline))
	return nil
}
