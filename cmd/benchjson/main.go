// Command benchjson runs the repo's key mechanism micro-benchmarks
// in-process (the same bodies bench_test.go wraps) and writes the
// measurements as JSON, so every PR can commit a BENCH_*.json snapshot
// and the perf trajectory stays machine-readable.
//
// Usage:
//
//	benchjson                 # JSON to stdout
//	benchjson -o BENCH.json   # JSON to a file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"sharedopt/internal/benchkit"
)

// snapshot is the file format of a BENCH_*.json perf snapshot.
type snapshot struct {
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Results    []benchkit.Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out string) error {
	snap := snapshot{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results:    benchkit.RunKey(),
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}
