package main

// Load mode: an open-loop saturation sweep over the sharded durable
// pricing tier. Each step of the rate ladder builds a fresh N-shard
// tier (in-memory journals, obs registry attached), derives a seeded
// arrival schedule from stats.Interarrivals at the step's offered rate,
// and replays it open-loop: a dispatcher walks the schedule on the wall
// clock and fires one goroutine per arrival, so a slow tier cannot slow
// the offered load down (no coordinated omission — late bids pile up
// instead of stretching the schedule). A settle ticker advances the
// billing slot at a fixed interval throughout; a final ClosePeriod
// settles whatever is still batched.
//
// Each step records what the tier sustained (accepted bids/s), what it
// shed (ErrOverloaded), and the p99 slot-advance latency from the
// tier.advance_ns histogram. The knee is the first step that violates
// the latency SLO or sheds load. Before a step is reported, its
// accounting must reconcile exactly: the clients' independent per-shard
// outcome tallies (routed with ShardFor, the same hash the tier uses)
// are compared field-for-field with ShardStats, the obs counters with
// both, and every accepted bid must be settled. Any mismatch is an
// error, not a statistic.
//
// The JSON report (LOAD_*.json) separates the deterministic plan —
// seed, ladder, per-step offered counts and mean gaps, which is
// byte-identical across same-seed runs — from the measured outcome
// fields; see docs/load-harness.md.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sharedopt"
	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/obs"
	"sharedopt/internal/resilience"
	"sharedopt/internal/stats"
)

// loadConfig is one sweep's full parameterization.
type loadConfig struct {
	seed        uint64
	shards      int
	bidsPerStep int
	maxBatch    int
	rates       []float64     // offered rates, bids/s, in ladder order
	settleEvery time.Duration // slot-advance interval
	slo         time.Duration // p99 slot-advance latency objective
	out         string        // JSON report path ("" writes none)
	requireKnee bool          // error if the ladder never saturates the tier
}

// loadStep is one rung of the ladder. Plan fields are a pure function
// of (seed, config) and reproduce byte-identically; outcome fields
// depend on the wall clock.
type loadStep struct {
	// Plan.
	OfferedRate float64 `json:"offered_rate"` // bids/s the schedule targets
	Offered     int     `json:"offered"`      // scheduled submissions
	MeanGapNs   int64   `json:"mean_gap_ns"`  // realized schedule mean gap

	// Outcome.
	Accepted     uint64  `json:"accepted"`
	Rejected     uint64  `json:"rejected"` // mechanism rejections (retroactive races)
	Overloaded   uint64  `json:"overloaded"`
	Advances     uint64  `json:"advances"`
	ElapsedNs    int64   `json:"elapsed_ns"`
	SustainedBPS float64 `json:"sustained_bids_per_sec"`
	P99AdvanceNs int64   `json:"p99_advance_ns"`
	SLOViolated  bool    `json:"slo_violated"`
}

// loadReport is the LOAD_*.json document.
type loadReport struct {
	Seed          uint64     `json:"seed"`
	Shards        int        `json:"shards"`
	MaxBatch      int        `json:"max_batch"`
	BidsPerStep   int        `json:"bids_per_step"`
	SettleEveryNs int64      `json:"settle_every_ns"`
	SLONs         int64      `json:"slo_ns"`
	Steps         []loadStep `json:"steps"`
	KneeIndex     int        `json:"knee_index"` // -1: ladder never saturated
	KneeRate      float64    `json:"knee_rate"`  // offered rate at the knee (0 if none)
}

// Canonical returns the report with every wall-clock-dependent field
// zeroed, leaving only the deterministic plan. Same seed and config ⇒
// byte-identical canonical JSON, which is what the reproducibility test
// pins.
func (r loadReport) Canonical() loadReport {
	out := r
	out.Steps = make([]loadStep, len(r.Steps))
	for i, s := range r.Steps {
		out.Steps[i] = loadStep{
			OfferedRate: s.OfferedRate,
			Offered:     s.Offered,
			MeanGapNs:   s.MeanGapNs,
		}
	}
	out.KneeIndex = 0
	out.KneeRate = 0
	return out
}

// scheduledBid is one precomputed arrival: the dispatcher fires it At
// nanoseconds after the step starts. All randomness is drawn up front
// on one goroutine so the schedule is a pure function of the seed.
type scheduledBid struct {
	at    time.Duration
	user  core.UserID
	cents int64
}

// buildSchedule derives step stepIdx's arrival schedule. Users are
// globally unique across steps so journals never see cross-step
// duplicates.
func buildSchedule(cfg loadConfig, stepIdx int) []scheduledBid {
	r := stats.NewRNG(cfg.seed + uint64(stepIdx)*1_000_003)
	rate := cfg.rates[stepIdx]
	gaps := stats.Interarrivals(r, cfg.bidsPerStep, 1.0/rate)
	sched := make([]scheduledBid, len(gaps))
	at := 0.0
	for i, g := range gaps {
		at += g
		sched[i] = scheduledBid{
			at:    time.Duration(at * float64(time.Second)),
			user:  core.UserID(1 + stepIdx*cfg.bidsPerStep + i),
			cents: int64(50 + r.Intn(500)),
		}
	}
	return sched
}

// meanGap returns the schedule's realized mean interarrival gap.
func meanGap(sched []scheduledBid) time.Duration {
	if len(sched) == 0 {
		return 0
	}
	return sched[len(sched)-1].at / time.Duration(len(sched))
}

// shardTally is the clients' own per-shard outcome accounting,
// maintained with atomics because bids complete concurrently. It is the
// independent witness the tier's ShardCounters are reconciled against.
type shardTally struct {
	accepted   atomic.Uint64
	rejected   atomic.Uint64
	overloaded atomic.Uint64
	readOnly   atomic.Uint64
}

// runLoadStep drives one rung and returns its record after exact
// reconciliation.
func runLoadStep(cfg loadConfig, stepIdx int, reg *obs.Registry) (loadStep, error) {
	sched := buildSchedule(cfg, stepIdx)
	step := loadStep{
		OfferedRate: cfg.rates[stepIdx],
		Offered:     len(sched),
		MeanGapNs:   int64(meanGap(sched)),
	}

	writers := make([]io.Writer, cfg.shards)
	for i := range writers {
		writers[i] = new(resilience.MemLog)
	}
	// Horizon sized so the settle ticker cannot exhaust the period even
	// if the step runs far past its scheduled duration.
	ticks := int(sched[len(sched)-1].at/cfg.settleEvery) + 1
	horizon := core.Slot(ticks*4 + 64)
	catalog := []sharedopt.Optimization{{ID: 1, Cost: econ.FromDollars(10)}}
	ss, err := resilience.NewShardedService(sharedopt.Additive, catalog, horizon, writers,
		resilience.ShardedConfig{MaxBatch: cfg.maxBatch, Obs: reg})
	if err != nil {
		return step, err
	}

	tallies := make([]shardTally, cfg.shards)
	var advances atomic.Uint64

	// The settle ticker advances the billing slot at the configured
	// cadence until the dispatcher and every in-flight bid are done.
	stop := make(chan struct{})
	var settleWG sync.WaitGroup
	settleWG.Add(1)
	go func() {
		defer settleWG.Done()
		tk := time.NewTicker(cfg.settleEvery)
		defer tk.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tk.C:
				if _, err := ss.AdvanceSlot(); err == nil {
					advances.Add(1)
				} else if errors.Is(err, sharedopt.ErrPeriodOver) {
					return
				}
			}
		}
	}()

	// Open-loop dispatch: walk the schedule on the wall clock, one
	// goroutine per arrival. Each bid targets the next unsettled slot at
	// the moment it fires; a settle racing past it turns the bid
	// retroactive and the mechanism rejects it — counted, not lost.
	start := time.Now()
	var bidWG sync.WaitGroup
	for i := range sched {
		b := sched[i]
		if d := b.at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		bidWG.Add(1)
		go func() {
			defer bidWG.Done()
			slot := ss.Now() + 1
			err := ss.SubmitAdditiveBid(1, core.OnlineBid{
				User: b.user, Start: slot, End: slot,
				Values: []econ.Money{econ.FromCents(b.cents)},
			})
			t := &tallies[resilience.ShardFor(b.user, cfg.shards)]
			switch {
			case err == nil:
				t.accepted.Add(1)
			case resilience.Retryable(err):
				t.overloaded.Add(1)
			case errors.Is(err, resilience.ErrShardWedged):
				t.readOnly.Add(1)
			default:
				t.rejected.Add(1)
			}
		}()
	}
	bidWG.Wait()
	close(stop)
	settleWG.Wait()
	if _, err := ss.ClosePeriod(); err != nil {
		return step, fmt.Errorf("rate %.0f: close: %w", step.OfferedRate, err)
	}
	elapsed := time.Since(start)

	// Exact reconciliation: the tier's books must match the clients'.
	perShard := ss.ShardStats()
	for i := range perShard {
		got, want := perShard[i], &tallies[i]
		if got.Accepted != want.accepted.Load() ||
			got.Rejected != want.rejected.Load() ||
			got.Overloaded != want.overloaded.Load() ||
			got.ReadOnly != want.readOnly.Load() {
			return step, fmt.Errorf("rate %.0f shard %d: counters %+v disagree with client tally {accepted:%d rejected:%d overloaded:%d readOnly:%d}",
				step.OfferedRate, i, got,
				want.accepted.Load(), want.rejected.Load(), want.overloaded.Load(), want.readOnly.Load())
		}
		if got.Pending != 0 || got.Settled != got.Accepted {
			return step, fmt.Errorf("rate %.0f shard %d: %d accepted but %d settled, %d pending after close",
				step.OfferedRate, i, got.Accepted, got.Settled, got.Pending)
		}
		step.Accepted += got.Accepted
		step.Rejected += got.Rejected
		step.Overloaded += got.Overloaded
	}
	if total := step.Accepted + step.Rejected + step.Overloaded; total != uint64(step.Offered) {
		return step, fmt.Errorf("rate %.0f: %d outcomes for %d offered bids — submissions lost",
			step.OfferedRate, total, step.Offered)
	}
	snap := reg.Snapshot()
	if snap.Counters["tier.accepted"] != step.Accepted ||
		snap.Counters["tier.overloaded"] != step.Overloaded ||
		snap.Counters["tier.settled"] != step.Accepted {
		return step, fmt.Errorf("rate %.0f: obs counters (accepted %d, overloaded %d, settled %d) disagree with shard books (accepted %d, overloaded %d)",
			step.OfferedRate,
			snap.Counters["tier.accepted"], snap.Counters["tier.overloaded"],
			snap.Counters["tier.settled"], step.Accepted, step.Overloaded)
	}

	step.Advances = advances.Load()
	step.ElapsedNs = int64(elapsed)
	step.SustainedBPS = float64(step.Accepted) / elapsed.Seconds()
	if h, ok := snap.Hists["tier.advance_ns"]; ok && h.Count > 0 {
		step.P99AdvanceNs = int64(h.Quantile(0.99))
	}
	step.SLOViolated = step.P99AdvanceNs > int64(cfg.slo)
	return step, nil
}

// runLoad executes the full ladder and writes the human summary to w
// and the JSON report to cfg.out.
func runLoad(cfg loadConfig, w io.Writer) (*loadReport, error) {
	if cfg.shards < 1 || cfg.bidsPerStep < 1 || len(cfg.rates) == 0 {
		return nil, errors.New("load needs shards >= 1, bids >= 1, and a non-empty rate ladder")
	}
	for i, r := range cfg.rates {
		if r <= 0 {
			return nil, fmt.Errorf("rate %d of the ladder is %v, want > 0", i, r)
		}
		if i > 0 && r <= cfg.rates[i-1] {
			return nil, fmt.Errorf("rate ladder must strictly increase, got %v after %v", r, cfg.rates[i-1])
		}
	}
	report := &loadReport{
		Seed:          cfg.seed,
		Shards:        cfg.shards,
		MaxBatch:      cfg.maxBatch,
		BidsPerStep:   cfg.bidsPerStep,
		SettleEveryNs: int64(cfg.settleEvery),
		SLONs:         int64(cfg.slo),
		KneeIndex:     -1,
	}
	fmt.Fprintf(w, "load: %d shards, max batch %d, settle every %v, p99 SLO %v, %d bids/step, seed %d\n",
		cfg.shards, cfg.maxBatch, cfg.settleEvery, cfg.slo, cfg.bidsPerStep, cfg.seed)
	fmt.Fprintf(w, "%12s %9s %9s %10s %13s %12s\n",
		"offered/s", "accepted", "shed", "advances", "sustained/s", "p99 advance")
	for i := range cfg.rates {
		// A fresh registry per step: each rung's histograms and counters
		// describe that rung alone.
		step, err := runLoadStep(cfg, i, obs.NewRegistry())
		if err != nil {
			return nil, err
		}
		report.Steps = append(report.Steps, step)
		mark := ""
		if report.KneeIndex < 0 && (step.SLOViolated || step.Overloaded > 0) {
			report.KneeIndex = i
			report.KneeRate = step.OfferedRate
			mark = "  <- knee"
		}
		fmt.Fprintf(w, "%12.0f %9d %9d %10d %13.0f %12s%s\n",
			step.OfferedRate, step.Accepted, step.Overloaded, step.Advances,
			step.SustainedBPS, time.Duration(step.P99AdvanceNs).Round(time.Microsecond), mark)
	}
	if report.KneeIndex >= 0 {
		k := report.Steps[report.KneeIndex]
		why := "p99 slot advance over SLO"
		if k.Overloaded > 0 {
			why = fmt.Sprintf("shed %d bids", k.Overloaded)
		}
		fmt.Fprintf(w, "knee at %.0f bids/s (%s); last clean rung sustained %.0f bids/s\n",
			report.KneeRate, why, sustainedBefore(report))
	} else {
		fmt.Fprintf(w, "no knee: the tier absorbed the whole ladder\n")
		if cfg.requireKnee {
			return nil, fmt.Errorf("ladder topped out at %.0f bids/s without saturating the tier (-require-knee)",
				cfg.rates[len(cfg.rates)-1])
		}
	}
	if cfg.out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "report: %s\n", cfg.out)
	}
	return report, nil
}

// sustainedBefore returns the sustained rate of the last rung before
// the knee (or 0 when the knee is the first rung).
func sustainedBefore(r *loadReport) float64 {
	if r.KneeIndex <= 0 {
		return 0
	}
	return r.Steps[r.KneeIndex-1].SustainedBPS
}

// parseRates parses the -rates ladder ("500,2500,10000").
func parseRates(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
