package main

// Network chaos mode (-chaos-net): seeded end-to-end fault sweeps over
// the sharded tier with a real TCP network at the ShardTransport
// boundary. Each round builds the same deterministic bid script twice —
// once against the in-process loopback tier (the fault-free reference),
// once against shard hosts behind transport.ShardServer/ShardClient
// pairs suffering a seeded NetFault schedule (latency, silent drops,
// duplicated deliveries, reordered sends, connection resets), a
// connection blackout, and one shard process kill with journal recovery
// mid-traffic — then asserts the robustness invariants:
//
//   - byte-identical settlement: the faulted TCP run closes with
//     exactly the reference run's invoices, revenue, cost, and
//     implemented set;
//   - exact accounting: every scripted bid is accepted exactly once and
//     the clients' outcomes match the shards' own counters;
//   - durability without duplication: each shard journal holds exactly
//     one record per accepted bid, even though the network delivered
//     some submissions twice and retried others blindly — zero
//     double-journaled fingerprints;
//   - deterministic joint recovery: recovering the surviving journals
//     twice yields identical state, equal to the live run's settlement.
//
// Any violation exits non-zero naming the round and seed, which
// reproduces the schedule exactly.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sharedopt"
	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/obs"
	"sharedopt/internal/resilience"
	"sharedopt/internal/resilience/transport"
	"sharedopt/internal/stats"
)

func runNetChaos(seed uint64, rounds int, w io.Writer) error {
	if rounds < 1 {
		return fmt.Errorf("chaos-net needs at least 1 round, got %d", rounds)
	}
	for i := 0; i < rounds; i++ {
		rs := seed + uint64(i)
		report, err := netChaosRound(rs)
		if err != nil {
			return fmt.Errorf("net round %d (seed %d): %w", i, rs, err)
		}
		fmt.Fprintf(w, "chaos round %d (net): %s\n", i, report)
	}
	fmt.Fprintf(w, "chaos-net: %d rounds clean (base seed %d)\n", rounds, seed)
	return nil
}

// netBid is one scripted submission.
type netBid struct {
	user       core.UserID
	opt        core.OptID
	set        []core.OptID
	start, end core.Slot
	vals       []econ.Money
}

// netScript is a deterministic workload: bids in submission order plus
// the bid count before each slot advance. The same script drives the
// reference and the faulted run.
type netScript struct {
	kind    sharedopt.GameKind
	catalog []sharedopt.Optimization
	horizon core.Slot
	bids    []netBid
	advs    []int
}

func buildNetScript(r *stats.RNG) netScript {
	sc := netScript{kind: sharedopt.Additive, horizon: core.Slot(3 + r.Intn(3))}
	if r.Intn(2) == 1 {
		sc.kind = sharedopt.Substitutive
	}
	sc.catalog = make([]sharedopt.Optimization, 2+r.Intn(2))
	for i := range sc.catalog {
		sc.catalog[i] = sharedopt.Optimization{
			ID:   core.OptID(i + 1),
			Cost: econ.FromCents(int64(300 + r.Intn(1500))),
		}
	}
	user := core.UserID(0)
	for now := core.Slot(0); now < sc.horizon; now++ {
		for n := 5 + r.Intn(5); n > 0; n-- {
			user++
			start := now + 1 + core.Slot(r.Intn(int(sc.horizon-now)))
			end := start + core.Slot(r.Intn(int(sc.horizon-start)+1))
			vals := make([]econ.Money, int(end-start+1))
			for k := range vals {
				vals[k] = econ.FromCents(int64(r.Intn(900)))
			}
			sc.bids = append(sc.bids, netBid{
				user: user, start: start, end: end, vals: vals,
				opt: sc.catalog[r.Intn(len(sc.catalog))].ID,
				set: []core.OptID{sc.catalog[r.Intn(len(sc.catalog))].ID},
			})
		}
		sc.advs = append(sc.advs, len(sc.bids))
	}
	return sc
}

// submitNetBid issues one scripted bid against a tier.
func submitNetBid(s *resilience.ShardedService, kind sharedopt.GameKind, b netBid) error {
	if kind == sharedopt.Additive {
		return s.SubmitAdditiveBid(b.opt, core.OnlineBid{
			User: b.user, Start: b.start, End: b.end, Values: b.vals,
		})
	}
	return s.SubmitSubstitutiveBid(core.OnlineSubstBid{
		User: b.user, Opts: b.set, Start: b.start, End: b.end, Values: b.vals,
	})
}

// netTransient is the driver's retry predicate: unavailability and
// admission overload are both worth retrying blindly (dedup and
// window-idempotent markers make the retries safe).
func netTransient(err error) bool {
	return errors.Is(err, resilience.ErrShardUnavailable) || errors.Is(err, resilience.ErrOverloaded)
}

// driveNetScript replays the script to completion, retrying transient
// failures to a definitive outcome. hook, when set, runs before bid i —
// the chaos run uses it to kill connections and shard processes
// mid-traffic.
func driveNetScript(s *resilience.ShardedService, sc netScript, hook func(op int) error) error {
	retry := resilience.Backoff{Attempts: 100, Base: time.Millisecond, Cap: 20 * time.Millisecond, Jitter: 0.5, Seed: 7}
	ctx := context.Background()
	i := 0
	for w, upto := range sc.advs {
		for ; i < upto; i++ {
			if hook != nil {
				if err := hook(i); err != nil {
					return fmt.Errorf("chaos hook at bid %d: %w", i, err)
				}
			}
			b := sc.bids[i]
			if err := resilience.RetryIf(ctx, retry, netTransient, func() error {
				return submitNetBid(s, sc.kind, b)
			}); err != nil {
				return fmt.Errorf("bid %d (user %d): %w", i, b.user, err)
			}
		}
		if err := resilience.RetryIf(ctx, retry, netTransient, func() error {
			_, err := s.AdvanceSlot()
			return err
		}); err != nil {
			return fmt.Errorf("advance to window %d: %w", w+1, err)
		}
	}
	return resilience.RetryIf(ctx, retry, netTransient, func() error {
		_, err := s.ClosePeriod()
		return err
	})
}

// shardAddr is a mutable dial target: the kill/restart hook moves the
// shard's server to a fresh port and the client's next dial follows.
type shardAddr struct {
	mu   sync.Mutex
	addr string
}

func (a *shardAddr) set(addr string) {
	a.mu.Lock()
	a.addr = addr
	a.mu.Unlock()
}

func (a *shardAddr) dial() (net.Conn, error) {
	a.mu.Lock()
	addr := a.addr
	a.mu.Unlock()
	return net.DialTimeout("tcp", addr, time.Second)
}

// netChaosRound runs one seeded schedule and checks every invariant,
// returning a one-line report for the log.
func netChaosRound(seed uint64) (string, error) {
	r := stats.NewRNG(seed ^ 0x7e57c0de5eed1e55)
	sc := buildNetScript(r)
	shards := 2 + r.Intn(2)
	callTimeout := 120 * time.Millisecond

	// Reference: the same script against the in-process loopback tier,
	// no network, no faults.
	refWriters := make([]io.Writer, shards)
	for i := range refWriters {
		refWriters[i] = new(resilience.MemLog)
	}
	ref, err := resilience.NewShardedService(sc.kind, sc.catalog, sc.horizon, refWriters, resilience.ShardedConfig{})
	if err != nil {
		return "", fmt.Errorf("reference tier: %v", err)
	}
	if err := driveNetScript(ref, sc, nil); err != nil {
		return "", fmt.Errorf("reference run: %v", err)
	}
	want := chaosSnapshot(ref)

	// Subject: shard hosts behind real TCP servers, clients injecting a
	// seeded fault schedule.
	reg := obs.NewRegistry()
	logs := make([]*resilience.MemLog, shards)
	servers := make([]*transport.ShardServer, shards)
	boxes := make([]*shardAddr, shards)
	faults := make([]*transport.NetFault, shards)
	links := make([]resilience.ShardTransport, shards)
	defer func() {
		for _, srv := range servers {
			if srv != nil {
				srv.Close()
			}
		}
	}()
	for i := 0; i < shards; i++ {
		logs[i] = new(resilience.MemLog)
		host, err := resilience.NewShardHost(sc.kind, sc.catalog, sc.horizon, i, shards, logs[i])
		if err != nil {
			return "", fmt.Errorf("host %d: %v", i, err)
		}
		servers[i] = transport.NewShardServer(host)
		addr, err := servers[i].Listen("127.0.0.1:0")
		if err != nil {
			return "", fmt.Errorf("shard %d listen: %v", i, err)
		}
		boxes[i] = &shardAddr{addr: addr}
		faults[i] = transport.NewNetFault(transport.NetFaultConfig{
			Drop:     0.02 + 0.04*r.Float64(),
			Dup:      0.05 + 0.10*r.Float64(),
			Reorder:  0.05 * r.Float64(),
			Reset:    0.02 + 0.04*r.Float64(),
			DelayMax: 300 * time.Microsecond,
		}, seed+uint64(i)*0x9e37)
		faults[i].SetArmed(false) // handshake clean, arm before driving
		cli, err := transport.NewShardClient(transport.ClientConfig{
			Dial:        boxes[i].dial,
			CallTimeout: callTimeout,
			Retry:       resilience.Backoff{Attempts: 3, Base: time.Millisecond, Cap: 5 * time.Millisecond, Jitter: 0.5, Seed: seed + uint64(i)},
			Breaker: transport.NewBreaker(transport.BreakerConfig{
				Failures: 4, Cooldown: 25 * time.Millisecond, Obs: reg, Shard: i,
			}),
			Fault: faults[i],
			Obs:   reg,
			Shard: i,
		})
		if err != nil {
			return "", fmt.Errorf("shard %d client: %v", i, err)
		}
		defer cli.Close()
		links[i] = cli
	}
	tcp, err := resilience.NewShardedServiceOver(sc.kind, sc.catalog, sc.horizon, links, resilience.ShardedConfig{CallTimeout: callTimeout, Obs: reg})
	if err != nil {
		return "", fmt.Errorf("tcp tier: %v", err)
	}
	for _, f := range faults {
		f.SetArmed(true)
	}

	// The chaos plan: one full-tier connection blackout and one shard
	// process kill (server down, host recovered from its journal bytes,
	// restarted on a fresh port), each before a scripted bid. After the
	// kill, an earlier bid is blindly resubmitted — the duplicated
	// delivery must resolve through dedup, not double-journal.
	breakOp := r.Intn(len(sc.bids))
	killOp := r.Intn(len(sc.bids))
	killShard := r.Intn(shards)
	dupIdx := -1
	if killOp > 0 {
		dupIdx = r.Intn(killOp)
	}
	hook := func(op int) error {
		if op == breakOp {
			for _, srv := range servers {
				srv.BreakConns()
			}
		}
		if op != killOp {
			return nil
		}
		servers[killShard].Close()
		recs, _, torn := resilience.ReadJournal(logs[killShard].Bytes())
		if torn {
			return fmt.Errorf("shard %d journal torn by process kill", killShard)
		}
		host, err := resilience.RecoverShardHost(recs, logs[killShard])
		if err != nil {
			return fmt.Errorf("recovering killed shard %d: %w", killShard, err)
		}
		servers[killShard] = transport.NewShardServer(host)
		addr, err := servers[killShard].Listen("127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("restarting shard %d: %w", killShard, err)
		}
		boxes[killShard].set(addr)
		if dupIdx >= 0 {
			// Blind duplicate of an already-accepted bid: must be a
			// clean no-op on counters and journals alike.
			if err := resilience.RetryIf(context.Background(),
				resilience.Backoff{Attempts: 100, Base: time.Millisecond, Cap: 20 * time.Millisecond},
				netTransient, func() error {
					return submitNetBid(tcp, sc.kind, sc.bids[dupIdx])
				}); err != nil {
				return fmt.Errorf("duplicate resubmission of bid %d: %w", dupIdx, err)
			}
		}
		return nil
	}
	if err := driveNetScript(tcp, sc, hook); err != nil {
		return "", err
	}

	// Invariant: settlement byte-identical to the fault-free reference.
	if got := chaosSnapshot(tcp); got != want {
		return "", fmt.Errorf("faulted TCP settlement diverged from fault-free reference:\n--- faulted ---\n%s--- reference ---\n%s", got, want)
	}

	// Invariant: exact accounting. Every scripted bid was driven to
	// acceptance exactly once; nothing pending, everything settled.
	perShard := tcp.ShardStats()
	var accepted uint64
	for i, st := range perShard {
		accepted += st.Accepted
		if st.Rejected != 0 {
			return "", fmt.Errorf("shard %d rejected %d scripted bids", i, st.Rejected)
		}
		if st.Pending != 0 {
			return "", fmt.Errorf("shard %d still pending %d after close", i, st.Pending)
		}
		if st.Settled != st.Accepted {
			return "", fmt.Errorf("shard %d settled %d of %d accepted", i, st.Settled, st.Accepted)
		}
	}
	if accepted != uint64(len(sc.bids)) {
		return "", fmt.Errorf("tier accepted %d of %d scripted bids", accepted, len(sc.bids))
	}

	// Invariant: durability without duplication. One journal record per
	// accepted bid; no user's bid journaled twice anywhere, despite
	// duplicated deliveries and blind retries.
	journals := make([][]resilience.Record, shards)
	seenUser := make(map[core.UserID]int)
	for i, m := range logs {
		recs, _, torn := resilience.ReadJournal(m.Bytes())
		if torn {
			return "", fmt.Errorf("shard %d journal torn", i)
		}
		journals[i] = recs
		bidRecords := uint64(0)
		for _, rec := range recs {
			if rec.Kind != resilience.KindAdditiveBid && rec.Kind != resilience.KindSubstBid {
				continue
			}
			bidRecords++
			if prev, dup := seenUser[rec.User]; dup {
				return "", fmt.Errorf("user %d double-journaled (shards %d and %d)", rec.User, prev, i)
			}
			seenUser[rec.User] = i
		}
		if bidRecords != perShard[i].Accepted {
			return "", fmt.Errorf("shard %d journal holds %d bid records for %d accepted bids", i, bidRecords, perShard[i].Accepted)
		}
	}

	// Invariant: deterministic joint recovery, agreeing with the live
	// settlement and invoicing every journaled bid.
	discard := make([]io.Writer, shards)
	for i := range discard {
		discard[i] = io.Discard
	}
	rec1, err := resilience.RecoverShardedService(journals, discard, resilience.ShardedConfig{})
	if err != nil {
		return "", fmt.Errorf("joint recovery: %v", err)
	}
	rec2, err := resilience.RecoverShardedService(journals, discard, resilience.ShardedConfig{})
	if err != nil {
		return "", fmt.Errorf("second joint recovery: %v", err)
	}
	if w := rec1.WedgedShards(); len(w) != 0 {
		return "", fmt.Errorf("recovery wedged shards %v", w)
	}
	s1, s2 := chaosSnapshot(rec1), chaosSnapshot(rec2)
	if s1 != s2 {
		return "", fmt.Errorf("joint recovery is nondeterministic:\n%s\nvs\n%s", s1, s2)
	}
	if s1 != want {
		return "", fmt.Errorf("recovered settlement diverged from live run:\n--- recovered ---\n%s--- live ---\n%s", s1, want)
	}
	inv := rec1.Invoices()
	for u := range seenUser {
		if _, ok := inv[u]; !ok {
			return "", fmt.Errorf("accepted bid of user %d left unpriced after recovery", u)
		}
	}

	sum := func(name string) (n uint64) {
		snap := reg.Snapshot()
		for i := 0; i < shards; i++ {
			n += snap.Counters[fmt.Sprintf("shard%d.%s", i, name)]
		}
		return n
	}
	return fmt.Sprintf("kind=%v shards=%d bids=%d killOp=%d/shard%d breakOp=%d faults=[%s] retries=%d redials=%d strays=%d breaker_opens=%d surplus=%v",
		sc.kind, shards, len(sc.bids), killOp, killShard, breakOp, faultSummary(faults),
		sum("net_retries"), sum("net_redials"), sum("net_stray_replies"), sum("net_breaker_open"), rec1.Surplus()), nil
}

func faultSummary(faults []*transport.NetFault) string {
	var b []byte
	for i, f := range faults {
		if i > 0 {
			b = append(b, "; "...)
		}
		b = append(b, f.String()...)
	}
	return string(b)
}
