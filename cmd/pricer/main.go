// Command pricer prices a JSON-described game with the paper's
// mechanisms and, optionally, compares against the regret baseline. With
// -chaos it instead runs seeded fault-injection sweeps over the durable
// pricing tier (see chaos.go) and exits non-zero on any invariant
// violation. With -load it runs an open-loop saturation sweep against a
// live sharded tier (see load.go), reporting sustained throughput and
// the knee of the latency curve.
//
// Usage:
//
//	pricer -f scenario.json
//	pricer -f scenario.json -compare-regret
//	cat scenario.json | pricer
//	pricer -chaos -seed 7 -rounds 32
//	pricer -chaos-net -seed 7 -rounds 8
//	pricer -chaos-seed-file failing_seeds.txt -rounds 4
//	pricer -load -shards 4 -rates 500,2500,10000,50000 -o LOAD_4shard.json
//
// Scenario format (amounts are dollar strings like "2.31"):
//
//	{
//	  "kind": "additive",            // or "substitutive"
//	  "horizon": 3,
//	  "optimizations": [{"id": 1, "cost": "100"}],
//	  "bids": [
//	    {"user": 1, "opt": 1, "start": 1, "end": 1, "values": ["101"]},
//	    {"user": 2, "opts": [1,2], "start": 1, "end": 2, "values": ["26","26"]}
//	  ]
//	}
//
// Additive bids carry "opt"; substitutive bids carry "opts".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/simulate"
)

type scenarioJSON struct {
	Kind          string    `json:"kind"`
	Horizon       core.Slot `json:"horizon"`
	Optimizations []struct {
		ID   core.OptID `json:"id"`
		Cost string     `json:"cost"`
	} `json:"optimizations"`
	Bids []struct {
		User   core.UserID  `json:"user"`
		Opt    core.OptID   `json:"opt"`
		Opts   []core.OptID `json:"opts"`
		Start  core.Slot    `json:"start"`
		End    core.Slot    `json:"end"`
		Values []string     `json:"values"`
	} `json:"bids"`
}

func main() {
	var (
		file    = flag.String("f", "-", "scenario file (- for stdin)")
		compare = flag.Bool("compare-regret", false, "also run the regret baseline")
		chaos   = flag.Bool("chaos", false, "run seeded fault-injection sweeps instead of pricing a scenario")
		seed    = flag.Uint64("seed", 1, "base seed for -chaos rounds and the -load schedule")
		rounds  = flag.Int("rounds", 16, "number of -chaos rounds")

		chaosNet = flag.Bool("chaos-net", false, "run seeded network-fault chaos over the TCP shard transport")
		seedFile = flag.String("chaos-seed-file", "", "replay newline-separated seeds through the selected chaos sweeps; exits non-zero naming the first failing seed")

		load        = flag.Bool("load", false, "run an open-loop saturation sweep over the sharded tier")
		shards      = flag.Int("shards", 4, "-load: shard count")
		rates       = flag.String("rates", "500,2500,10000,50000", "-load: offered-rate ladder, bids/s, strictly increasing")
		loadBids    = flag.Int("load-bids", 2000, "-load: scheduled bids per ladder step")
		maxBatch    = flag.Int("max-batch", 64, "-load: per-shard between-slots batch bound")
		settleEvery = flag.Duration("settle-every", 20*time.Millisecond, "-load: slot-advance interval")
		slo         = flag.Duration("slo", 10*time.Millisecond, "-load: p99 slot-advance latency objective")
		out         = flag.String("o", "", "-load: JSON report path (default LOAD_<shards>shard_<seed>.json)")
		requireKnee = flag.Bool("require-knee", false, "-load: exit non-zero if the ladder never saturates the tier")
	)
	flag.Parse()
	if *chaos || *chaosNet || *seedFile != "" {
		// With a seed file but neither sweep flag, replay seeds through
		// both sweeps.
		runFault := *chaos || (*seedFile != "" && !*chaosNet)
		runNet := *chaosNet || (*seedFile != "" && !*chaos)
		sweep := func(seed uint64) error {
			if runFault {
				if err := runChaos(seed, *rounds, os.Stdout); err != nil {
					return err
				}
			}
			if runNet {
				if err := runNetChaos(seed, *rounds, os.Stdout); err != nil {
					return err
				}
			}
			return nil
		}
		if *seedFile != "" {
			if err := replaySeedFile(*seedFile, sweep, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "pricer: chaos:", err)
				os.Exit(1)
			}
			return
		}
		if err := sweep(*seed); err != nil {
			fmt.Fprintln(os.Stderr, "pricer: chaos:", err)
			os.Exit(1)
		}
		return
	}
	if *load {
		ladder, err := parseRates(*rates)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pricer: load:", err)
			os.Exit(1)
		}
		cfg := loadConfig{
			seed: *seed, shards: *shards, bidsPerStep: *loadBids,
			maxBatch: *maxBatch, rates: ladder,
			settleEvery: *settleEvery, slo: *slo,
			out: *out, requireKnee: *requireKnee,
		}
		if cfg.out == "" {
			cfg.out = fmt.Sprintf("LOAD_%dshard_%d.json", cfg.shards, cfg.seed)
		}
		if _, err := runLoad(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "pricer: load:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*file, *compare, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pricer:", err)
		os.Exit(1)
	}
}

func run(file string, compare bool, w io.Writer) error {
	var in io.Reader = os.Stdin
	if file != "-" {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var sc scenarioJSON
	dec := json.NewDecoder(in)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return fmt.Errorf("parsing scenario: %w", err)
	}
	opts := make([]core.Optimization, 0, len(sc.Optimizations))
	for _, o := range sc.Optimizations {
		cost, err := econ.ParseMoney(o.Cost)
		if err != nil {
			return err
		}
		opts = append(opts, core.Optimization{ID: o.ID, Cost: cost})
	}
	switch sc.Kind {
	case "additive":
		return runAdditive(sc, opts, compare, w)
	case "substitutive":
		return runSubstitutive(sc, opts, compare, w)
	default:
		return fmt.Errorf("unknown kind %q (want additive or substitutive)", sc.Kind)
	}
}

func parseValues(raw []string) ([]econ.Money, error) {
	out := make([]econ.Money, len(raw))
	for i, s := range raw {
		v, err := econ.ParseMoney(s)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func runAdditive(sc scenarioJSON, opts []core.Optimization, compare bool, w io.Writer) error {
	scenario := simulate.AdditiveScenario{Opts: opts, Horizon: sc.Horizon}
	for _, b := range sc.Bids {
		if len(b.Opts) > 0 {
			return fmt.Errorf("additive bid for user %d carries %q: additive bids name a single optimization with %q", b.User, "opts", "opt")
		}
		if b.Opt == 0 {
			return fmt.Errorf("additive bid for user %d names no optimization (missing %q)", b.User, "opt")
		}
		values, err := parseValues(b.Values)
		if err != nil {
			return fmt.Errorf("bid for user %d: %w", b.User, err)
		}
		scenario.Bids = append(scenario.Bids, simulate.AdditiveBid{
			User: b.User, Opt: b.Opt, Start: b.Start, End: b.End, Values: values,
		})
	}
	res, err := simulate.RunAddOn(scenario)
	if err != nil {
		return err
	}
	printResult(w, "AddOn mechanism", res)
	if compare {
		reg, err := simulate.RunRegretAdditive(scenario)
		if err != nil {
			return err
		}
		printResult(w, "Regret baseline", reg)
	}
	return printPayments(w, scenario)
}

func runSubstitutive(sc scenarioJSON, opts []core.Optimization, compare bool, w io.Writer) error {
	scenario := simulate.SubstScenario{Opts: opts, Horizon: sc.Horizon}
	for _, b := range sc.Bids {
		if b.Opt != 0 {
			return fmt.Errorf("substitutive bid for user %d carries %q: substitutive bids name an acceptable set with %q", b.User, "opt", "opts")
		}
		if len(b.Opts) == 0 {
			return fmt.Errorf("substitutive bid for user %d names no optimizations (missing %q)", b.User, "opts")
		}
		values, err := parseValues(b.Values)
		if err != nil {
			return fmt.Errorf("bid for user %d: %w", b.User, err)
		}
		scenario.Bids = append(scenario.Bids, core.OnlineSubstBid{
			User: b.User, Opts: b.Opts, Start: b.Start, End: b.End, Values: values,
		})
	}
	res, err := simulate.RunSubstOn(scenario)
	if err != nil {
		return err
	}
	printResult(w, "SubstOn mechanism", res)
	if compare {
		reg, err := simulate.RunRegretSubst(scenario)
		if err != nil {
			return err
		}
		printResult(w, "Regret baseline", reg)
	}
	return nil
}

func printResult(w io.Writer, title string, res simulate.Result) {
	fmt.Fprintf(w, "%s:\n", title)
	fmt.Fprintf(w, "  realized user value: %v\n", res.TotalValue)
	fmt.Fprintf(w, "  optimization cost:   %v\n", res.Cost)
	fmt.Fprintf(w, "  payments collected:  %v\n", res.Payments)
	fmt.Fprintf(w, "  total utility:       %v\n", res.Utility())
	fmt.Fprintf(w, "  cloud balance:       %v\n", res.Balance())
}

// printPayments re-runs the additive game slot by slot to show per-user
// invoices.
func printPayments(w io.Writer, sc simulate.AdditiveScenario) error {
	game := core.NewAdditiveGame(sc.Opts)
	users := map[core.UserID]bool{}
	for _, b := range sc.Bids {
		if err := game.Submit(b.Opt, core.OnlineBid{
			User: b.User, Start: b.Start, End: b.End, Values: b.Values,
		}); err != nil {
			return err
		}
		users[b.User] = true
	}
	payments := make(map[core.UserID]econ.Money)
	for t := core.Slot(1); t <= sc.Horizon; t++ {
		for u, p := range game.AdvanceSlot().Departures {
			payments[u] += p
		}
	}
	for u, p := range game.Close() {
		payments[u] += p
	}
	ids := make([]core.UserID, 0, len(users))
	for u := range users {
		ids = append(ids, u)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Fprintln(w, "per-user payments:")
	for _, u := range ids {
		fmt.Fprintf(w, "  user %d pays %v\n", u, payments[u])
	}
	return nil
}
