package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNetChaosSweepClean runs a small seeded network-fault sweep: every
// round must keep the faulted TCP run byte-identical to the fault-free
// reference and report its fault schedule.
func TestNetChaosSweepClean(t *testing.T) {
	var out strings.Builder
	if err := runNetChaos(1, 2, &out); err != nil {
		t.Fatalf("net chaos sweep: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "2 rounds clean") {
		t.Fatalf("missing clean summary:\n%s", got)
	}
	if !strings.Contains(got, "faults=[reqs=") || !strings.Contains(got, "killOp=") {
		t.Fatalf("rounds do not report their fault schedules:\n%s", got)
	}
}

func TestNetChaosRejectsBadRounds(t *testing.T) {
	if err := runNetChaos(1, 0, &strings.Builder{}); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

// TestReplaySeedFile pins the seed-file workflow: comments and blanks
// are skipped, seeds run in order, and a violation names the first
// failing seed.
func TestReplaySeedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seeds.txt")
	if err := os.WriteFile(path, []byte("# triage bag\n3\n\n9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var ran []uint64
	var out strings.Builder
	if err := replaySeedFile(path, func(seed uint64) error {
		ran = append(ran, seed)
		return nil
	}, &out); err != nil {
		t.Fatalf("clean replay: %v", err)
	}
	if len(ran) != 2 || ran[0] != 3 || ran[1] != 9 {
		t.Fatalf("ran seeds %v, want [3 9]", ran)
	}
	if !strings.Contains(out.String(), "2 seeds clean") {
		t.Fatalf("missing summary:\n%s", out.String())
	}

	boom := os.ErrInvalid
	err := replaySeedFile(path, func(seed uint64) error {
		if seed == 9 {
			return boom
		}
		return nil
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "first failing seed 9") {
		t.Fatalf("failing replay error %v does not name seed 9", err)
	}

	for name, body := range map[string]string{
		"empty":    "# nothing\n\n",
		"nonseed":  "12\nbanana\n",
		"negative": "-4\n",
	} {
		p := filepath.Join(t.TempDir(), name+".txt")
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := replaySeedFile(p, func(uint64) error { return nil }, &out); err == nil {
			t.Fatalf("%s seed file accepted", name)
		}
	}
}
