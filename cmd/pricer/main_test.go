package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeScenario(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const example3JSON = `{
  "kind": "additive",
  "horizon": 3,
  "optimizations": [{"id": 1, "cost": "100"}],
  "bids": [
    {"user": 1, "opt": 1, "start": 1, "end": 1, "values": ["101"]},
    {"user": 2, "opt": 1, "start": 1, "end": 3, "values": ["16","16","16"]},
    {"user": 3, "opt": 1, "start": 2, "end": 2, "values": ["26"]},
    {"user": 4, "opt": 1, "start": 2, "end": 2, "values": ["26"]}
  ]
}`

func TestPricerAdditiveExample3(t *testing.T) {
	path := writeScenario(t, example3JSON)
	var out strings.Builder
	if err := run(path, true, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"AddOn mechanism",
		"total utility:       $85.00",
		"cloud balance:       $75.00",
		"Regret baseline",
		"user 1 pays $100.00",
		"user 2 pays $25.00",
		"user 4 pays $25.00",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q\n%s", want, got)
		}
	}
}

func TestPricerSubstitutiveExample8(t *testing.T) {
	path := writeScenario(t, `{
	  "kind": "substitutive",
	  "horizon": 3,
	  "optimizations": [
	    {"id": 1, "cost": "60"}, {"id": 2, "cost": "100"}, {"id": 3, "cost": "50"}
	  ],
	  "bids": [
	    {"user": 1, "opts": [1,2], "start": 1, "end": 2, "values": ["100","100"]},
	    {"user": 2, "opts": [1,2,3], "start": 2, "end": 3, "values": ["100","100"]},
	    {"user": 3, "opts": [3], "start": 3, "end": 3, "values": ["100"]}
	  ]
	}`)
	var out strings.Builder
	if err := run(path, true, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"SubstOn mechanism",
		"optimization cost:   $110.00",
		"payments collected:  $110.00",
		"Regret baseline",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q\n%s", want, got)
		}
	}
}

func TestPricerRejectsBadScenarios(t *testing.T) {
	cases := map[string]string{
		"bad kind":    `{"kind": "other", "horizon": 1, "optimizations": [], "bids": []}`,
		"bad json":    `{`,
		"bad money":   `{"kind": "additive", "horizon": 1, "optimizations": [{"id":1,"cost":"x"}], "bids": []}`,
		"unknown key": `{"kind": "additive", "horizon": 1, "optimizations": [], "bids": [], "zzz": 1}`,
		"bad value": `{"kind": "additive", "horizon": 1,
		  "optimizations": [{"id":1,"cost":"1"}],
		  "bids": [{"user":1,"opt":1,"start":1,"end":1,"values":["??"]}]}`,
		"bad subst value": `{"kind": "substitutive", "horizon": 1,
		  "optimizations": [{"id":1,"cost":"1"}],
		  "bids": [{"user":1,"opts":[1],"start":1,"end":1,"values":["??"]}]}`,
	}
	for name, body := range cases {
		path := writeScenario(t, body)
		var out strings.Builder
		if err := run(path, false, &out); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if err := run(filepath.Join(t.TempDir(), "missing.json"), false, &strings.Builder{}); err == nil {
		t.Error("missing file accepted")
	}
}
