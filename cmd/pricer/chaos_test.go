package main

import (
	"strings"
	"testing"
)

// TestChaosSweepClean runs a small seeded sweep: every round must hold
// the robustness invariants and report its plan.
func TestChaosSweepClean(t *testing.T) {
	var out strings.Builder
	if err := runChaos(1, 6, &out); err != nil {
		t.Fatalf("chaos sweep: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "6 rounds clean") {
		t.Fatalf("missing clean summary:\n%s", got)
	}
	if !strings.Contains(got, "plan=") {
		t.Fatalf("rounds do not report their fault plans:\n%s", got)
	}
}

func TestChaosRejectsBadRounds(t *testing.T) {
	if err := runChaos(1, 0, &strings.Builder{}); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

// TestPricerRejectsMixedBidShapes pins the malformed-scenario messages:
// an additive bid carrying "opts", a substitutive bid carrying "opt",
// and bids naming no optimization at all must all fail with a message
// that tells the author which field to use.
func TestPricerRejectsMixedBidShapes(t *testing.T) {
	cases := []struct {
		name, body, wantMsg string
	}{
		{
			name: "additive bid with opts",
			body: `{"kind": "additive", "horizon": 1,
			  "optimizations": [{"id":1,"cost":"1"}],
			  "bids": [{"user":3,"opts":[1],"start":1,"end":1,"values":["2"]}]}`,
			wantMsg: `additive bid for user 3 carries "opts"`,
		},
		{
			name: "additive bid without opt",
			body: `{"kind": "additive", "horizon": 1,
			  "optimizations": [{"id":1,"cost":"1"}],
			  "bids": [{"user":4,"start":1,"end":1,"values":["2"]}]}`,
			wantMsg: `additive bid for user 4 names no optimization`,
		},
		{
			name: "substitutive bid with opt",
			body: `{"kind": "substitutive", "horizon": 1,
			  "optimizations": [{"id":1,"cost":"1"}],
			  "bids": [{"user":5,"opt":1,"start":1,"end":1,"values":["2"]}]}`,
			wantMsg: `substitutive bid for user 5 carries "opt"`,
		},
		{
			name: "substitutive bid without opts",
			body: `{"kind": "substitutive", "horizon": 1,
			  "optimizations": [{"id":1,"cost":"1"}],
			  "bids": [{"user":6,"start":1,"end":1,"values":["2"]}]}`,
			wantMsg: `substitutive bid for user 6 names no optimizations`,
		},
		{
			name: "bad money names the bidder",
			body: `{"kind": "additive", "horizon": 1,
			  "optimizations": [{"id":1,"cost":"1"}],
			  "bids": [{"user":7,"opt":1,"start":1,"end":1,"values":["oops"]}]}`,
			wantMsg: `bid for user 7`,
		},
		{
			name:    "unknown kind names the alternatives",
			body:    `{"kind": "quadratic", "horizon": 1, "optimizations": [], "bids": []}`,
			wantMsg: `unknown kind "quadratic" (want additive or substitutive)`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeScenario(t, tc.body)
			err := run(path, false, &strings.Builder{})
			if err == nil {
				t.Fatal("malformed scenario accepted")
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not contain %q", err, tc.wantMsg)
			}
		})
	}
}
