package main

// Chaos mode: seeded end-to-end fault sweeps over the durable pricing
// tier. Each round draws a random workload and a random fault plan,
// drives concurrent bids through the admission-controlled ingestion
// front end into a journaled service whose log suffers the planned
// fault, then recovers from the surviving bytes and asserts the
// robustness invariants:
//
//   - exact accounting: every submission the clients attempted is
//     accepted, mechanism-rejected, or ErrOverloaded — never lost — and
//     the front end's counters agree with the clients' own tallies;
//   - durability: the journal holds exactly one record per accepted bid;
//   - determinism: recovering the same journal twice yields identical
//     state;
//   - cost recovery: after settling the recovered period the surplus is
//     non-negative and every journaled (accepted) bid is invoiced.
//
// Any violation is an error: the command exits non-zero naming the
// round and seed, which reproduces the schedule exactly.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"sharedopt"
	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/resilience"
	"sharedopt/internal/stats"
)

func runChaos(seed uint64, rounds int, w io.Writer) error {
	if rounds < 1 {
		return fmt.Errorf("chaos needs at least 1 round, got %d", rounds)
	}
	for i := 0; i < rounds; i++ {
		rs := seed + uint64(i)
		report, err := chaosRound(rs)
		if err != nil {
			return fmt.Errorf("round %d (seed %d): %w", i, rs, err)
		}
		fmt.Fprintf(w, "chaos round %d: %s\n", i, report)
	}
	fmt.Fprintf(w, "chaos: %d rounds clean (base seed %d)\n", rounds, seed)
	return nil
}

// chaosRound runs one seeded schedule and checks every invariant,
// returning a one-line report for the log.
func chaosRound(seed uint64) (string, error) {
	r := stats.NewRNG(seed)
	kind := sharedopt.Additive
	if r.Intn(2) == 1 {
		kind = sharedopt.Substitutive
	}
	catalog := make([]sharedopt.Optimization, 2+r.Intn(2))
	for i := range catalog {
		catalog[i] = sharedopt.Optimization{
			ID:   core.OptID(i + 1),
			Cost: econ.FromCents(int64(300 + r.Intn(1500))),
		}
	}
	horizon := core.Slot(3 + r.Intn(3))
	plan := resilience.RandomPlan(seed^0x9e3779b97f4a7c15, 24)

	var m resilience.MemLog
	fw := resilience.NewFaultWriter(&m, plan)
	js, err := resilience.NewJournaledService(kind, catalog, horizon, fw)
	if err != nil {
		// The config record itself was faulted: the constructor must
		// refuse, and with nothing durable there is nothing to recover.
		if plan.Kind != resilience.FaultNone && plan.Record == 0 {
			return fmt.Sprintf("plan=%v: config write faulted, service refused", plan), nil
		}
		return "", fmt.Errorf("constructor failed outside its fault window (plan %v): %v", plan, err)
	}
	in := resilience.NewIngest(js, resilience.IngestConfig{
		Queue:     2,
		ApplyHook: func() { time.Sleep(100 * time.Microsecond) },
	})
	defer in.Close()

	// Clients: per slot, a concurrent burst of submissions (some blindly
	// retried) against the tiny queue, then one slot advance.
	var mu sync.Mutex
	tally := struct{ accepted, rejected, overloaded int }{}
	nextUser := core.UserID(0)
	submitBurst := func(now core.Slot, n int) {
		type job struct {
			user  core.UserID
			start core.Slot
			end   core.Slot
			vals  []econ.Money
			opt   core.OptID
			set   []core.OptID
			retry bool
		}
		jobs := make([]job, n)
		for i := range jobs {
			nextUser++
			start := now + 1 + core.Slot(r.Intn(int(horizon-now)))
			end := start + core.Slot(r.Intn(int(horizon-start)+1))
			vals := make([]econ.Money, int(end-start+1))
			for k := range vals {
				vals[k] = econ.FromCents(int64(r.Intn(900)))
			}
			jobs[i] = job{
				user: nextUser, start: start, end: end, vals: vals,
				opt:   catalog[r.Intn(len(catalog))].ID,
				set:   []core.OptID{catalog[r.Intn(len(catalog))].ID},
				retry: r.Intn(3) == 0,
			}
		}
		var wg sync.WaitGroup
		for _, j := range jobs {
			wg.Add(1)
			go func(j job) {
				defer wg.Done()
				op := func() error {
					if kind == sharedopt.Additive {
						return in.SubmitAdditive(j.opt, core.OnlineBid{
							User: j.user, Start: j.start, End: j.end, Values: j.vals,
						})
					}
					return in.SubmitSubstitutive(core.OnlineSubstBid{
						User: j.user, Opts: j.set, Start: j.start, End: j.end, Values: j.vals,
					})
				}
				var err error
				if j.retry {
					err = resilience.Retry(context.Background(), resilience.Backoff{
						Attempts: 4, Base: 200 * time.Microsecond, Cap: time.Millisecond,
					}, op)
				} else {
					err = op()
				}
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err == nil:
					tally.accepted++
				case errors.Is(err, resilience.ErrOverloaded):
					tally.overloaded++
				default:
					tally.rejected++
				}
			}(j)
		}
		wg.Wait()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for now := core.Slot(0); now < horizon; now++ {
		submitBurst(now, 4+r.Intn(8))
		if _, err := in.AdvanceSlot(ctx); err != nil {
			// The advance that hits the fault surfaces the injected error
			// itself; later calls report ErrJournalBroken. Either way the
			// service is wedged: stop driving and go recover.
			if js.Broken() != nil {
				break
			}
			return "", fmt.Errorf("advance at slot %d: %v", now, err)
		}
	}
	in.Close()

	// Invariant: exact accounting. Client-observed outcomes must match
	// the front end's counters; retried overloads are counted once per
	// final outcome on both sides... except that a retry which
	// eventually lands also bounced off the queue first, so Overloaded
	// may exceed the clients' final-outcome tally but never undercount.
	st := in.Stats()
	if got, want := st.Accepted, uint64(tally.accepted); got != want {
		return "", fmt.Errorf("accepted counter %d != client tally %d", got, want)
	}
	if st.Overloaded < uint64(tally.overloaded) {
		return "", fmt.Errorf("overloaded counter %d < client tally %d", st.Overloaded, tally.overloaded)
	}
	if got, want := st.Rejected, uint64(tally.rejected); got != want {
		return "", fmt.Errorf("rejected counter %d != client tally %d", got, want)
	}
	if total := tally.accepted + tally.rejected + tally.overloaded; total != int(nextUser) {
		return "", fmt.Errorf("accounting leak: %d outcomes for %d submissions", total, nextUser)
	}

	// Invariant: durability. The surviving journal holds exactly one bid
	// record per accepted submission: a submit acknowledges success only
	// after its record is durably framed, and a record torn by the fault
	// was reported to its caller as a failure, not an accept.
	recs, _, torn := resilience.ReadJournal(m.Bytes())
	bidRecords := 0
	for _, rec := range recs {
		if rec.Kind == resilience.KindAdditiveBid || rec.Kind == resilience.KindSubstBid {
			bidRecords++
		}
	}
	if bidRecords != tally.accepted {
		return "", fmt.Errorf("journal holds %d bid records for %d accepted bids", bidRecords, tally.accepted)
	}

	// Invariant: deterministic recovery.
	rec1, err := resilience.RecoverService(recs, io.Discard)
	if err != nil {
		return "", fmt.Errorf("recovery: %v", err)
	}
	rec2, err := resilience.RecoverService(recs, io.Discard)
	if err != nil {
		return "", fmt.Errorf("second recovery: %v", err)
	}
	s1, s2 := chaosSnapshot(rec1), chaosSnapshot(rec2)
	if s1 != s2 {
		return "", fmt.Errorf("recovery is nondeterministic:\n%s\nvs\n%s", s1, s2)
	}

	// Invariant: cost recovery. Settle the recovered period; the surplus
	// must be non-negative and every journaled bid invoiced.
	if !rec1.Closed() {
		if _, err := rec1.ClosePeriod(); err != nil {
			return "", fmt.Errorf("settling recovered period: %v", err)
		}
	}
	if s := rec1.Surplus(); s < 0 {
		return "", fmt.Errorf("negative settled surplus %v", s)
	}
	inv := rec1.Invoices()
	for _, rec := range recs {
		if rec.Kind != resilience.KindAdditiveBid && rec.Kind != resilience.KindSubstBid {
			continue
		}
		if _, ok := inv[rec.User]; !ok {
			return "", fmt.Errorf("accepted bid of user %d left unpriced", rec.User)
		}
	}

	return fmt.Sprintf("kind=%v plan=%v bids=%d accepted=%d rejected=%d overloaded=%d torn=%v records=%d surplus=%v",
		kind, plan, nextUser, tally.accepted, tally.rejected, tally.overloaded, torn, len(recs), rec1.Surplus()), nil
}

// chaosSnapshot renders the recovered pricing state for determinism
// comparison.
func chaosSnapshot(s *resilience.JournaledService) string {
	var b strings.Builder
	fmt.Fprintf(&b, "now=%d closed=%v revenue=%v cost=%v\n", s.Now(), s.Closed(), s.Revenue(), s.CostIncurred())
	fmt.Fprintf(&b, "implemented=%v\n", s.ImplementedOpts())
	inv := s.Invoices()
	users := make([]core.UserID, 0, len(inv))
	for u := range inv {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	for _, u := range users {
		fmt.Fprintf(&b, "user %d paid %v\n", u, inv[u])
	}
	return b.String()
}
