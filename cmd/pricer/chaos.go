package main

// Chaos mode: seeded end-to-end fault sweeps over the durable pricing
// tier. Each round draws a random workload and a random fault plan,
// drives concurrent bids through the admission-controlled ingestion
// front end into a journaled service whose log suffers the planned
// fault, then recovers from the surviving bytes and asserts the
// robustness invariants:
//
//   - exact accounting: every submission the clients attempted is
//     accepted, mechanism-rejected, or ErrOverloaded — never lost — and
//     the front end's counters agree with the clients' own tallies;
//   - durability: the journal holds exactly one record per accepted bid;
//   - determinism: recovering the same journal twice yields identical
//     state;
//   - cost recovery: after settling the recovered period the surplus is
//     non-negative and every journaled (accepted) bid is invoiced.
//
// Every round also runs a sharded sweep over the partitioned durable
// tier: the same workload shape drives a ShardedService whose N
// journals suffer independent per-shard faults (plus, in half the
// rounds, a process kill at a random cross-shard write), then the
// surviving journals are recovered together and the sharded invariants
// checked — exact per-shard accounting (clients' observed outcomes,
// including read-only rejections from wedged shards, against the
// shards' own counters), per-journal durability, deterministic
// cross-shard recovery, and full settlement of every journaled bid.
//
// Any violation is an error: the command exits non-zero naming the
// round and seed, which reproduces the schedule exactly.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"sharedopt"
	"sharedopt/internal/core"
	"sharedopt/internal/econ"
	"sharedopt/internal/resilience"
	"sharedopt/internal/stats"
)

func runChaos(seed uint64, rounds int, w io.Writer) error {
	if rounds < 1 {
		return fmt.Errorf("chaos needs at least 1 round, got %d", rounds)
	}
	for i := 0; i < rounds; i++ {
		rs := seed + uint64(i)
		report, err := chaosRound(rs)
		if err != nil {
			return fmt.Errorf("round %d (seed %d): %w", i, rs, err)
		}
		fmt.Fprintf(w, "chaos round %d: %s\n", i, report)
		report, err = shardedChaosRound(rs)
		if err != nil {
			return fmt.Errorf("sharded round %d (seed %d): %w", i, rs, err)
		}
		fmt.Fprintf(w, "chaos round %d (sharded): %s\n", i, report)
	}
	fmt.Fprintf(w, "chaos: %d rounds clean (base seed %d)\n", rounds, seed)
	return nil
}

// chaosRound runs one seeded schedule and checks every invariant,
// returning a one-line report for the log.
func chaosRound(seed uint64) (string, error) {
	r := stats.NewRNG(seed)
	kind := sharedopt.Additive
	if r.Intn(2) == 1 {
		kind = sharedopt.Substitutive
	}
	catalog := make([]sharedopt.Optimization, 2+r.Intn(2))
	for i := range catalog {
		catalog[i] = sharedopt.Optimization{
			ID:   core.OptID(i + 1),
			Cost: econ.FromCents(int64(300 + r.Intn(1500))),
		}
	}
	horizon := core.Slot(3 + r.Intn(3))
	plan := resilience.RandomPlan(seed^0x9e3779b97f4a7c15, 24)

	var m resilience.MemLog
	fw := resilience.NewFaultWriter(&m, plan)
	js, err := resilience.NewJournaledService(kind, catalog, horizon, fw)
	if err != nil {
		// The config record itself was faulted: the constructor must
		// refuse, and with nothing durable there is nothing to recover.
		if plan.Kind != resilience.FaultNone && plan.Record == 0 {
			return fmt.Sprintf("plan=%v: config write faulted, service refused", plan), nil
		}
		return "", fmt.Errorf("constructor failed outside its fault window (plan %v): %v", plan, err)
	}
	in := resilience.NewIngest(js, resilience.IngestConfig{
		Queue:     2,
		ApplyHook: func() { time.Sleep(100 * time.Microsecond) },
	})
	defer in.Close()

	// Clients: per slot, a concurrent burst of submissions (some blindly
	// retried) against the tiny queue, then one slot advance.
	var mu sync.Mutex
	tally := struct{ accepted, rejected, overloaded int }{}
	nextUser := core.UserID(0)
	submitBurst := func(now core.Slot, n int) {
		type job struct {
			user  core.UserID
			start core.Slot
			end   core.Slot
			vals  []econ.Money
			opt   core.OptID
			set   []core.OptID
			retry bool
		}
		jobs := make([]job, n)
		for i := range jobs {
			nextUser++
			start := now + 1 + core.Slot(r.Intn(int(horizon-now)))
			end := start + core.Slot(r.Intn(int(horizon-start)+1))
			vals := make([]econ.Money, int(end-start+1))
			for k := range vals {
				vals[k] = econ.FromCents(int64(r.Intn(900)))
			}
			jobs[i] = job{
				user: nextUser, start: start, end: end, vals: vals,
				opt:   catalog[r.Intn(len(catalog))].ID,
				set:   []core.OptID{catalog[r.Intn(len(catalog))].ID},
				retry: r.Intn(3) == 0,
			}
		}
		var wg sync.WaitGroup
		for _, j := range jobs {
			wg.Add(1)
			go func(j job) {
				defer wg.Done()
				op := func() error {
					if kind == sharedopt.Additive {
						return in.SubmitAdditive(j.opt, core.OnlineBid{
							User: j.user, Start: j.start, End: j.end, Values: j.vals,
						})
					}
					return in.SubmitSubstitutive(core.OnlineSubstBid{
						User: j.user, Opts: j.set, Start: j.start, End: j.end, Values: j.vals,
					})
				}
				var err error
				if j.retry {
					err = resilience.Retry(context.Background(), resilience.Backoff{
						Attempts: 4, Base: 200 * time.Microsecond, Cap: time.Millisecond,
					}, op)
				} else {
					err = op()
				}
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err == nil:
					tally.accepted++
				case errors.Is(err, resilience.ErrOverloaded):
					tally.overloaded++
				default:
					tally.rejected++
				}
			}(j)
		}
		wg.Wait()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for now := core.Slot(0); now < horizon; now++ {
		submitBurst(now, 4+r.Intn(8))
		if _, err := in.AdvanceSlot(ctx); err != nil {
			// The advance that hits the fault surfaces the injected error
			// itself; later calls report ErrJournalBroken. Either way the
			// service is wedged: stop driving and go recover.
			if js.Broken() != nil {
				break
			}
			return "", fmt.Errorf("advance at slot %d: %v", now, err)
		}
	}
	in.Close()

	// Invariant: exact accounting. Client-observed outcomes must match
	// the front end's counters; retried overloads are counted once per
	// final outcome on both sides... except that a retry which
	// eventually lands also bounced off the queue first, so Overloaded
	// may exceed the clients' final-outcome tally but never undercount.
	st := in.Stats()
	if got, want := st.Accepted, uint64(tally.accepted); got != want {
		return "", fmt.Errorf("accepted counter %d != client tally %d", got, want)
	}
	if st.Overloaded < uint64(tally.overloaded) {
		return "", fmt.Errorf("overloaded counter %d < client tally %d", st.Overloaded, tally.overloaded)
	}
	if got, want := st.Rejected, uint64(tally.rejected); got != want {
		return "", fmt.Errorf("rejected counter %d != client tally %d", got, want)
	}
	if total := tally.accepted + tally.rejected + tally.overloaded; total != int(nextUser) {
		return "", fmt.Errorf("accounting leak: %d outcomes for %d submissions", total, nextUser)
	}

	// Invariant: durability. The surviving journal holds exactly one bid
	// record per accepted submission: a submit acknowledges success only
	// after its record is durably framed, and a record torn by the fault
	// was reported to its caller as a failure, not an accept.
	recs, _, torn := resilience.ReadJournal(m.Bytes())
	bidRecords := 0
	for _, rec := range recs {
		if rec.Kind == resilience.KindAdditiveBid || rec.Kind == resilience.KindSubstBid {
			bidRecords++
		}
	}
	if bidRecords != tally.accepted {
		return "", fmt.Errorf("journal holds %d bid records for %d accepted bids", bidRecords, tally.accepted)
	}

	// Invariant: deterministic recovery.
	rec1, err := resilience.RecoverService(recs, io.Discard)
	if err != nil {
		return "", fmt.Errorf("recovery: %v", err)
	}
	rec2, err := resilience.RecoverService(recs, io.Discard)
	if err != nil {
		return "", fmt.Errorf("second recovery: %v", err)
	}
	s1, s2 := chaosSnapshot(rec1), chaosSnapshot(rec2)
	if s1 != s2 {
		return "", fmt.Errorf("recovery is nondeterministic:\n%s\nvs\n%s", s1, s2)
	}

	// Invariant: cost recovery. Settle the recovered period; the surplus
	// must be non-negative and every journaled bid invoiced.
	if !rec1.Closed() {
		if _, err := rec1.ClosePeriod(); err != nil {
			return "", fmt.Errorf("settling recovered period: %v", err)
		}
	}
	if s := rec1.Surplus(); s < 0 {
		return "", fmt.Errorf("negative settled surplus %v", s)
	}
	inv := rec1.Invoices()
	for _, rec := range recs {
		if rec.Kind != resilience.KindAdditiveBid && rec.Kind != resilience.KindSubstBid {
			continue
		}
		if _, ok := inv[rec.User]; !ok {
			return "", fmt.Errorf("accepted bid of user %d left unpriced", rec.User)
		}
	}

	return fmt.Sprintf("kind=%v plan=%v bids=%d accepted=%d rejected=%d overloaded=%d torn=%v records=%d surplus=%v",
		kind, plan, nextUser, tally.accepted, tally.rejected, tally.overloaded, torn, len(recs), rec1.Surplus()), nil
}

// shardedChaosRound runs one seeded schedule against the sharded
// durable tier: independent per-shard fault plans, an optional
// process kill at a random cross-shard write interleaving, concurrent
// clients with blind overload retries, then joint recovery of the
// surviving journals and the sharded robustness invariants.
func shardedChaosRound(seed uint64) (string, error) {
	r := stats.NewRNG(seed ^ 0xdeadbeefcafef00d)
	kind := sharedopt.Additive
	if r.Intn(2) == 1 {
		kind = sharedopt.Substitutive
	}
	catalog := make([]sharedopt.Optimization, 2+r.Intn(2))
	for i := range catalog {
		catalog[i] = sharedopt.Optimization{
			ID:   core.OptID(i + 1),
			Cost: econ.FromCents(int64(300 + r.Intn(1500))),
		}
	}
	horizon := core.Slot(3 + r.Intn(3))
	shards := []int{2, 4, 8}[r.Intn(3)]
	plans := resilience.RandomShardPlans(seed^0x517cc1b727220a95, shards, 16)
	group := resilience.NewCrashGroup()
	killAt := -1
	if r.Intn(2) == 0 {
		killAt = r.Intn(32)
		group.KillAtWrite(killAt, r.Intn(10))
	}
	cfg := resilience.ShardedConfig{MaxBatch: 2 + r.Intn(4)}

	logs := make([]*resilience.MemLog, shards)
	writers := make([]io.Writer, shards)
	for i := range logs {
		logs[i] = new(resilience.MemLog)
		writers[i] = resilience.NewFaultWriterInGroup(logs[i], plans[i], group)
	}
	ss, err := resilience.NewShardedService(kind, catalog, horizon, writers, cfg)
	if err != nil {
		// Only a fault on some shard's very first write — its config
		// record — may refuse the constructor.
		configFault := killAt >= 0 && killAt < shards
		for _, p := range plans {
			if p.Kind != resilience.FaultNone && p.Record == 0 {
				configFault = true
			}
		}
		if configFault {
			return fmt.Sprintf("shards=%d: config write faulted, service refused", shards), nil
		}
		return "", fmt.Errorf("constructor failed outside its fault window (plans %v, killAt %d): %v", plans, killAt, err)
	}

	// Clients: per slot, a concurrent burst of distinct users routed by
	// the service, some blindly retrying overloads against the bounded
	// batch; every outcome is tallied for the accounting invariant.
	var mu sync.Mutex
	tally := struct{ accepted, rejected, overloaded, readonly int }{}
	nextUser := core.UserID(0)
	submitBurst := func(now core.Slot, n int) {
		type job struct {
			user  core.UserID
			start core.Slot
			end   core.Slot
			vals  []econ.Money
			opt   core.OptID
			set   []core.OptID
			retry bool
		}
		jobs := make([]job, n)
		for i := range jobs {
			nextUser++
			start := now + 1 + core.Slot(r.Intn(int(horizon-now)))
			end := start + core.Slot(r.Intn(int(horizon-start)+1))
			vals := make([]econ.Money, int(end-start+1))
			for k := range vals {
				vals[k] = econ.FromCents(int64(r.Intn(900)))
			}
			jobs[i] = job{
				user: nextUser, start: start, end: end, vals: vals,
				opt:   catalog[r.Intn(len(catalog))].ID,
				set:   []core.OptID{catalog[r.Intn(len(catalog))].ID},
				retry: r.Intn(3) == 0,
			}
		}
		var wg sync.WaitGroup
		for _, j := range jobs {
			wg.Add(1)
			go func(j job) {
				defer wg.Done()
				op := func() error {
					if kind == sharedopt.Additive {
						return ss.SubmitAdditiveBid(j.opt, core.OnlineBid{
							User: j.user, Start: j.start, End: j.end, Values: j.vals,
						})
					}
					return ss.SubmitSubstitutiveBid(core.OnlineSubstBid{
						User: j.user, Opts: j.set, Start: j.start, End: j.end, Values: j.vals,
					})
				}
				var err error
				if j.retry {
					err = resilience.Retry(context.Background(), resilience.Backoff{
						Attempts: 4, Base: 50 * time.Microsecond, Cap: 200 * time.Microsecond,
					}, op)
				} else {
					err = op()
				}
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err == nil:
					tally.accepted++
				case errors.Is(err, resilience.ErrShardWedged):
					tally.readonly++
				case errors.Is(err, resilience.ErrOverloaded):
					tally.overloaded++
				default:
					tally.rejected++
				}
			}(j)
		}
		wg.Wait()
	}

	for now := core.Slot(0); now < horizon; now++ {
		submitBurst(now, 4+r.Intn(8))
		if _, err := ss.AdvanceSlot(); err != nil {
			// Only a fully-wedged tier refuses to advance; partial
			// failure degrades per shard without surfacing here.
			if errors.Is(err, resilience.ErrJournalBroken) {
				break
			}
			return "", fmt.Errorf("advance at slot %d: %v", now, err)
		}
	}

	// Invariant: exact per-shard accounting. Accepted, rejected and
	// read-only are final outcomes on both sides (neither is retried);
	// a retried overload may bounce several times before landing, so
	// the counter bounds the clients' final-outcome tally from above.
	var st resilience.ShardCounters
	for _, sc := range ss.ShardStats() {
		st.Accepted += sc.Accepted
		st.Rejected += sc.Rejected
		st.Overloaded += sc.Overloaded
		st.ReadOnly += sc.ReadOnly
	}
	if got, want := st.Accepted, uint64(tally.accepted); got != want {
		return "", fmt.Errorf("accepted counter %d != client tally %d", got, want)
	}
	if got, want := st.Rejected, uint64(tally.rejected); got != want {
		return "", fmt.Errorf("rejected counter %d != client tally %d", got, want)
	}
	if got, want := st.ReadOnly, uint64(tally.readonly); got != want {
		return "", fmt.Errorf("read-only counter %d != client tally %d", got, want)
	}
	if st.Overloaded < uint64(tally.overloaded) {
		return "", fmt.Errorf("overloaded counter %d < client tally %d", st.Overloaded, tally.overloaded)
	}
	if total := tally.accepted + tally.rejected + tally.overloaded + tally.readonly; total != int(nextUser) {
		return "", fmt.Errorf("accounting leak: %d outcomes for %d submissions", total, nextUser)
	}

	// Invariant: per-journal durability. Each shard's surviving valid
	// prefix holds exactly one bid record per bid that shard accepted.
	journals := make([][]resilience.Record, shards)
	perShard := ss.ShardStats()
	for i, m := range logs {
		recs, _, _ := resilience.ReadJournal(m.Bytes())
		journals[i] = recs
		bidRecords := uint64(0)
		for _, rec := range recs {
			if rec.Kind == resilience.KindAdditiveBid || rec.Kind == resilience.KindSubstBid {
				bidRecords++
			}
		}
		if bidRecords != perShard[i].Accepted {
			return "", fmt.Errorf("shard %d journal holds %d bid records for %d accepted bids",
				i, bidRecords, perShard[i].Accepted)
		}
	}

	// Invariant: deterministic cross-shard recovery. The faults hit the
	// live writers, not the logs, and one user only ever reaches one
	// shard — so recovery must reconcile every journal without wedging.
	discard := func() []io.Writer {
		ws := make([]io.Writer, shards)
		for i := range ws {
			ws[i] = io.Discard
		}
		return ws
	}
	rec1, err := resilience.RecoverShardedService(journals, discard(), cfg)
	if err != nil {
		return "", fmt.Errorf("sharded recovery: %v", err)
	}
	rec2, err := resilience.RecoverShardedService(journals, discard(), cfg)
	if err != nil {
		return "", fmt.Errorf("second sharded recovery: %v", err)
	}
	if w := rec1.WedgedShards(); len(w) != 0 {
		return "", fmt.Errorf("recovery wedged shards %v", w)
	}
	s1, s2 := chaosSnapshot(rec1), chaosSnapshot(rec2)
	if s1 != s2 {
		return "", fmt.Errorf("sharded recovery is nondeterministic:\n%s\nvs\n%s", s1, s2)
	}

	// Invariant: cost recovery across every journal. Settle the
	// recovered period; surplus non-negative, every journaled bid
	// invoiced.
	if !rec1.Closed() {
		if _, err := rec1.ClosePeriod(); err != nil {
			return "", fmt.Errorf("settling recovered period: %v", err)
		}
	}
	if s := rec1.Surplus(); s < 0 {
		return "", fmt.Errorf("negative settled surplus %v", s)
	}
	inv := rec1.Invoices()
	for i, recs := range journals {
		for _, rec := range recs {
			if rec.Kind != resilience.KindAdditiveBid && rec.Kind != resilience.KindSubstBid {
				continue
			}
			if _, ok := inv[rec.User]; !ok {
				return "", fmt.Errorf("accepted bid of user %d (shard %d) left unpriced", rec.User, i)
			}
		}
	}

	return fmt.Sprintf("kind=%v shards=%d killAt=%d bids=%d accepted=%d rejected=%d overloaded=%d readonly=%d wedged=%v surplus=%v",
		kind, shards, killAt, nextUser, tally.accepted, tally.rejected, tally.overloaded, tally.readonly,
		ss.WedgedShards(), rec1.Surplus()), nil
}

// chaosState is the read surface both durable tiers expose for the
// determinism comparison.
type chaosState interface {
	Now() core.Slot
	Closed() bool
	Revenue() econ.Money
	CostIncurred() econ.Money
	ImplementedOpts() []core.OptID
	Invoices() map[core.UserID]econ.Money
}

// chaosSnapshot renders the recovered pricing state for determinism
// comparison.
func chaosSnapshot(s chaosState) string {
	var b strings.Builder
	fmt.Fprintf(&b, "now=%d closed=%v revenue=%v cost=%v\n", s.Now(), s.Closed(), s.Revenue(), s.CostIncurred())
	fmt.Fprintf(&b, "implemented=%v\n", s.ImplementedOpts())
	inv := s.Invoices()
	users := make([]core.UserID, 0, len(inv))
	for u := range inv {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	for _, u := range users {
		fmt.Fprintf(&b, "user %d paid %v\n", u, inv[u])
	}
	return b.String()
}
