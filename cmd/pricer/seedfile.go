package main

// -chaos-seed-file: replay a saved list of chaos seeds. The file holds
// one base seed per line (decimal uint64); blank lines and #-comments
// are skipped. Each seed runs the selected sweeps in file order, and
// the first violation stops the replay naming its seed — the workflow
// for triaging a failure bag from a long fuzzing soak.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// replaySeedFile parses path and runs sweep for each listed seed.
func replaySeedFile(path string, sweep func(seed uint64) error, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var seeds []uint64
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		seed, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return fmt.Errorf("seed file %s line %d: %q is not a seed: %v", path, line, text, err)
		}
		seeds = append(seeds, seed)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("seed file %s: %w", path, err)
	}
	if len(seeds) == 0 {
		return fmt.Errorf("seed file %s holds no seeds", path)
	}
	for _, seed := range seeds {
		fmt.Fprintf(w, "seed file %s: replaying seed %d\n", path, seed)
		if err := sweep(seed); err != nil {
			return fmt.Errorf("seed file %s: first failing seed %d: %w", path, seed, err)
		}
	}
	fmt.Fprintf(w, "seed file %s: %d seeds clean\n", path, len(seeds))
	return nil
}
