package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// smokeLoadConfig is a ladder small enough for -race yet guaranteed to
// saturate: the top rung offers far more bids between settles than the
// per-shard batches can hold.
func smokeLoadConfig(dir string) loadConfig {
	return loadConfig{
		seed:        7,
		shards:      2,
		bidsPerStep: 150,
		maxBatch:    16,
		rates:       []float64{200, 20000},
		settleEvery: 5 * time.Millisecond,
		slo:         100 * time.Millisecond,
		out:         filepath.Join(dir, "LOAD_test.json"),
		requireKnee: true,
	}
}

// A sweep must find the knee, keep exact books (runLoad errors on any
// reconciliation failure), and write a parseable report.
func TestLoadSweepFindsKneeAndReconciles(t *testing.T) {
	cfg := smokeLoadConfig(t.TempDir())
	var out strings.Builder
	report, err := runLoad(cfg, &out)
	if err != nil {
		t.Fatalf("runLoad: %v\n%s", err, out.String())
	}
	if report.KneeIndex < 0 {
		t.Fatalf("no knee found on a saturating ladder\n%s", out.String())
	}
	if report.KneeRate != cfg.rates[report.KneeIndex] {
		t.Errorf("knee rate %v is not rung %d's rate", report.KneeRate, report.KneeIndex)
	}
	for i, s := range report.Steps {
		if s.Offered != cfg.bidsPerStep {
			t.Errorf("step %d offered %d, want %d", i, s.Offered, cfg.bidsPerStep)
		}
		if got := s.Accepted + s.Rejected + s.Overloaded; got != uint64(s.Offered) {
			t.Errorf("step %d: %d outcomes for %d offered", i, got, s.Offered)
		}
	}
	knee := report.Steps[report.KneeIndex]
	if knee.Overloaded == 0 && !knee.SLOViolated {
		t.Errorf("knee step neither shed nor violated the SLO: %+v", knee)
	}
	data, err := os.ReadFile(cfg.out)
	if err != nil {
		t.Fatal(err)
	}
	var parsed loadReport
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if !reflect.DeepEqual(&parsed, report) {
		t.Error("written report does not round-trip to the returned one")
	}
	if !strings.Contains(out.String(), "knee at") {
		t.Errorf("human summary names no knee:\n%s", out.String())
	}
}

// The plan is a pure function of the seed: two same-seed sweeps must
// produce byte-identical canonical JSON (wall-clock fields zeroed).
func TestLoadReportCanonicalReproducible(t *testing.T) {
	canon := func() []byte {
		t.Helper()
		cfg := smokeLoadConfig(t.TempDir())
		cfg.requireKnee = false
		r, err := runLoad(cfg, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(r.Canonical())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := canon(), canon()
	if string(a) != string(b) {
		t.Fatalf("same seed, different canonical plans:\n%s\n%s", a, b)
	}
	// And a different seed produces a different schedule.
	cfg := smokeLoadConfig(t.TempDir())
	cfg.seed++
	cfg.requireKnee = false
	r, err := runLoad(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	c, err := json.Marshal(r.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestLoadConfigValidation(t *testing.T) {
	base := smokeLoadConfig(t.TempDir())
	for name, mutate := range map[string]func(*loadConfig){
		"no rates":        func(c *loadConfig) { c.rates = nil },
		"zero rate":       func(c *loadConfig) { c.rates = []float64{0, 10} },
		"non-increasing":  func(c *loadConfig) { c.rates = []float64{100, 100} },
		"zero shards":     func(c *loadConfig) { c.shards = 0 },
		"zero bids":       func(c *loadConfig) { c.bidsPerStep = 0 },
		"decreasing rung": func(c *loadConfig) { c.rates = []float64{500, 200} },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := runLoad(cfg, io.Discard); err == nil {
			t.Errorf("%s: runLoad accepted an invalid config", name)
		}
	}
}

func TestParseRates(t *testing.T) {
	got, err := parseRates(" 500, 2500 ,10000")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{500, 2500, 10000}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseRates = %v, want %v", got, want)
	}
	if _, err := parseRates("500,abc"); err == nil {
		t.Fatal("parseRates accepted a non-number")
	}
}
