module sharedopt

go 1.24
