package sharedopt

// Robustness tests for the service layer: the torn-read regression test
// for Surplus and the period-boundary edges (close idempotency, every
// ErrPeriodOver path, StartPeriod while open, implemented harvest after
// an early close) the durable pricing tier leans on.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// surplusHammerService builds a service where every AdvanceSlot
// atomically adds $10 of cost AND $10 of revenue: opt t is implemented in
// slot t by a single-slot bidder who departs the same slot paying the
// whole cost. A consistent surplus is 0 after every slot; only a torn
// read (revenue from before an advance, cost from after) can observe a
// negative value.
func surplusHammerService(t *testing.T, horizon Slot) *Service {
	t.Helper()
	opts := make([]Optimization, horizon)
	for i := range opts {
		opts[i] = Optimization{ID: OptID(i + 1), Cost: FromDollars(10)}
	}
	svc, err := NewAdditiveService(opts, horizon)
	if err != nil {
		t.Fatal(err)
	}
	for s := Slot(1); s <= horizon; s++ {
		if err := svc.SubmitAdditiveBid(OptID(s), OnlineBid{
			User: UserID(s), Start: s, End: s, Values: []Money{FromDollars(10)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return svc
}

// TestSurplusNoTornRead hammers Surplus from concurrent readers while
// slots advance. Before Surplus computed both sides under one lock, the
// reader could interleave with an AdvanceSlot between the Revenue and
// CostIncurred reads and see surplus = -$10 — a state that never existed.
// Run with -race to also certify the synchronization.
func TestSurplusNoTornRead(t *testing.T) {
	const horizon = 200
	svc := surplusHammerService(t, horizon)

	var stop atomic.Bool
	var negatives atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if svc.Surplus() < 0 {
					negatives.Add(1)
				}
			}
		}()
	}
	for s := 0; s < horizon; s++ {
		if _, err := svc.AdvanceSlot(); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if n := negatives.Load(); n != 0 {
		t.Fatalf("observed %d transiently negative surplus reads", n)
	}
	if got := svc.Surplus(); got != 0 {
		t.Fatalf("final surplus = %v, want 0", got)
	}
}

func TestClosePeriodIdempotent(t *testing.T) {
	svc, err := NewAdditiveService([]Optimization{{ID: 1, Cost: FromDollars(10)}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.SubmitAdditiveBid(1, OnlineBid{
		User: 7, Start: 1, End: 3, Values: []Money{FromDollars(5), FromDollars(5), FromDollars(5)},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AdvanceSlot(); err != nil {
		t.Fatal(err)
	}
	first, err := svc.ClosePeriod()
	if err != nil {
		t.Fatal(err)
	}
	if got := first[7]; got != FromDollars(10) {
		t.Fatalf("first close charged user 7 %v, want $10.00", got)
	}
	if !svc.Closed() {
		t.Fatal("service not closed after ClosePeriod")
	}
	second, err := svc.ClosePeriod()
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 0 {
		t.Fatalf("second close charged %v, want nothing", second)
	}
	if got, _ := svc.Invoice(7); got != FromDollars(10) {
		t.Fatalf("invoice after double close = %v, want $10.00", got)
	}
}

// TestErrPeriodOverPaths drives every mutating entry point of both
// service kinds into a finished period — ended early by ClosePeriod and
// naturally by advancing through the full horizon — and requires the
// typed ErrPeriodOver from each.
func TestErrPeriodOverPaths(t *testing.T) {
	newAdditive := func(t *testing.T) *Service {
		svc, err := NewAdditiveService([]Optimization{{ID: 1, Cost: FromDollars(10)}}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}
	newSubst := func(t *testing.T) *Service {
		svc, err := NewSubstitutiveService([]Optimization{{ID: 1, Cost: FromDollars(10)}}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}
	endEarly := func(t *testing.T, svc *Service) {
		if _, err := svc.ClosePeriod(); err != nil {
			t.Fatal(err)
		}
	}
	endNaturally := func(t *testing.T, svc *Service) {
		for i := 0; i < 2; i++ {
			if _, err := svc.AdvanceSlot(); err != nil {
				t.Fatal(err)
			}
		}
	}

	cases := []struct {
		name string
		make func(t *testing.T) *Service
		end  func(t *testing.T, svc *Service)
		op   func(svc *Service) error
	}{
		{"additive bid after close", newAdditive, endEarly, func(svc *Service) error {
			return svc.SubmitAdditiveBid(1, OnlineBid{User: 1, Start: 1, End: 1, Values: []Money{Dollar}})
		}},
		{"additive bid after horizon", newAdditive, endNaturally, func(svc *Service) error {
			return svc.SubmitAdditiveBid(1, OnlineBid{User: 1, Start: 3, End: 3, Values: []Money{Dollar}})
		}},
		{"additive advance after close", newAdditive, endEarly, func(svc *Service) error {
			_, err := svc.AdvanceSlot()
			return err
		}},
		{"additive advance after horizon", newAdditive, endNaturally, func(svc *Service) error {
			_, err := svc.AdvanceSlot()
			return err
		}},
		{"substitutive bid after close", newSubst, endEarly, func(svc *Service) error {
			return svc.SubmitSubstitutiveBid(OnlineSubstBid{User: 1, Opts: []OptID{1}, Start: 1, End: 1, Values: []Money{Dollar}})
		}},
		{"substitutive bid after horizon", newSubst, endNaturally, func(svc *Service) error {
			return svc.SubmitSubstitutiveBid(OnlineSubstBid{User: 1, Opts: []OptID{1}, Start: 3, End: 3, Values: []Money{Dollar}})
		}},
		{"substitutive advance after close", newSubst, endEarly, func(svc *Service) error {
			_, err := svc.AdvanceSlot()
			return err
		}},
		{"substitutive advance after horizon", newSubst, endNaturally, func(svc *Service) error {
			_, err := svc.AdvanceSlot()
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			svc := tc.make(t)
			tc.end(t, svc)
			if err := tc.op(svc); !errors.Is(err, ErrPeriodOver) {
				t.Fatalf("got %v, want ErrPeriodOver", err)
			}
		})
	}
}

func TestStartPeriodWhileOpen(t *testing.T) {
	catalog := []Optimization{{ID: 1, Cost: FromDollars(10)}}
	pm, err := NewPeriodManager(Additive, catalog, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := pm.StartPeriod()
	if err != nil {
		t.Fatal(err)
	}
	// Still open: zero and one of two slots processed.
	if _, err := pm.StartPeriod(); !errors.Is(err, ErrPeriodOpen) {
		t.Fatalf("StartPeriod on fresh period: got %v, want ErrPeriodOpen", err)
	}
	if _, err := svc.AdvanceSlot(); err != nil {
		t.Fatal(err)
	}
	if _, err := pm.StartPeriod(); !errors.Is(err, ErrPeriodOpen) {
		t.Fatalf("StartPeriod mid-period: got %v, want ErrPeriodOpen", err)
	}
	// Ended early: the next period may start.
	if _, err := svc.ClosePeriod(); err != nil {
		t.Fatal(err)
	}
	if _, err := pm.StartPeriod(); err != nil {
		t.Fatalf("StartPeriod after close: %v", err)
	}
	if got := pm.Period(); got != 2 {
		t.Fatalf("period = %d, want 2", got)
	}
}

// TestImplementedHarvestAfterEarlyClose implements an optimization, ends
// the period early with ClosePeriod, and checks the next StartPeriod
// still harvests the implementation: the maintenance discount applies
// and PeriodManager.Implemented reports the carry-over.
func TestImplementedHarvestAfterEarlyClose(t *testing.T) {
	catalog := []Optimization{
		{ID: 1, Cost: FromDollars(10)},
		{ID: 2, Cost: FromDollars(10)},
	}
	policy, err := MaintenanceDiscount(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := NewPeriodManager(Additive, catalog, 3, policy)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := pm.StartPeriod()
	if err != nil {
		t.Fatal(err)
	}
	// Implement opt 1 in slot 1 (opt 2 draws no bids), then close early
	// with two horizon slots still unprocessed.
	if err := svc.SubmitAdditiveBid(1, OnlineBid{
		User: 5, Start: 1, End: 1, Values: []Money{FromDollars(12)},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AdvanceSlot(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ClosePeriod(); err != nil {
		t.Fatal(err)
	}
	if got := pm.Implemented(); len(got) != 0 {
		t.Fatalf("Implemented before harvest = %v, want empty (finished periods only)", got)
	}
	svc2, err := pm.StartPeriod()
	if err != nil {
		t.Fatal(err)
	}
	got := pm.Implemented()
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Implemented after harvest = %v, want [1]", got)
	}
	opts := svc2.Optimizations()
	if len(opts) != 2 {
		t.Fatalf("period 2 catalog has %d opts, want 2", len(opts))
	}
	if opts[0].ID != 1 || opts[0].Cost != FromDollars(5) {
		t.Fatalf("opt 1 period-2 cost = %v, want discounted $5.00", opts[0].Cost)
	}
	if opts[1].ID != 2 || opts[1].Cost != FromDollars(10) {
		t.Fatalf("opt 2 period-2 cost = %v, want full $10.00", opts[1].Cost)
	}
	revenue, cost := pm.Totals()
	if revenue != FromDollars(10) || cost != FromDollars(10) {
		t.Fatalf("totals = (%v, %v), want ($10.00, $10.00)", revenue, cost)
	}
}
